//! Seeded random module generation.
//!
//! The generator deliberately produces shapes the SPEC stand-ins never
//! emit: **irreducible loops** (guarded backward branches into arbitrary
//! earlier blocks, including block bodies of other loops), **multi-exit
//! functions** (every block may return), **critical-edge meshes**
//! (forward branches over blocks into shared join points), **zero-trip
//! loops and dead regions** (fuel-guarded back edges whose guard is
//! already exhausted), **extreme hot/cold skew** (masked branch
//! conditions from near-always to 1-in-64), and **register pressure near
//! the target's register-file limit** (accumulator counts around
//! `Target::num_regs`, forcing allocator spills). A slice of seeds
//! instead reuses `spillopt-benchgen`'s structured skeletons
//! ([`spillopt_benchgen::gen_body`]) for deep PST nesting, handlers, and
//! workload-realistic profiles.
//!
//! Termination is guaranteed by construction: every block increments a
//! fuel counter and every backward control transfer is guarded by
//! `fuel < limit`, so any cycle executes at most `limit` times; calls
//! form a forward DAG over the module's functions. Generated functions
//! are checked with the IR verifier; the rare draw that violates a
//! structural invariant (an unreachable block behind a skipped-over
//! `jmp`, say) is rejected and redrawn from the same deterministic
//! stream, so generation is a pure function of `(target, seed)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spillopt_benchgen::{emit_function, gen_body, EmitConfig, ShapeConfig, Style};
use spillopt_ir::{
    BinOp, BlockId, Callee, Cond, FuncId, Function, FunctionBuilder, InstKind, Module, Reg,
    RegDiscipline, Target, VReg,
};

/// One generated differential-test case: a module plus the workload that
/// doubles as training profile and reference run.
#[derive(Clone, Debug)]
pub struct StressCase {
    /// The seed the case was drawn from.
    pub seed: u64,
    /// The generated module (virtual registers, verified).
    pub module: Module,
    /// Workload runs: `(function, arguments)` pairs, executed in order.
    pub runs: Vec<(FuncId, Vec<i64>)>,
}

/// Generates the case for `seed` against `target`'s convention.
///
/// Deterministic: the same `(target, seed)` pair always yields the same
/// module and workload.
pub fn gen_case(target: &Target, seed: u64) -> StressCase {
    gen_case_scaled(target, seed, 1)
}

/// As [`gen_case`], with every drawn function size multiplied by
/// `scale`: structured bodies get `scale`× the shape budget and raw
/// CFGs `scale`× the block count. The RNG stream is identical to
/// [`gen_case`] (`scale` only multiplies drawn sizes), so `scale == 1`
/// reproduces it bit for bit.
///
/// The perf-trajectory bench uses scaled cases as its module-scale
/// corpus: the adversarial *shapes* of the differential stress
/// subsystem at the function sizes where optimizer wall-clock actually
/// matters.
pub fn gen_case_scaled(target: &Target, seed: u64, scale: u32) -> StressCase {
    let scale = scale.max(1) as usize;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5712_E55C_A5E5_0000);
    let num_funcs = rng.gen_range(1..=4usize);
    let max_params = 2.min(target.arg_regs().len());
    let nparams: Vec<usize> = (0..num_funcs)
        .map(|_| rng.gen_range(0..=max_params))
        .collect();

    let mut module = Module::new(format!("stress{seed}"));
    for i in 0..num_funcs {
        let structured = max_params >= 2 && rng.gen_bool(0.3);
        let func = if structured {
            gen_structured_function(i, &nparams, num_funcs, target, scale, &mut rng)
        } else {
            gen_raw_function(i, &nparams, target, scale, &mut rng)
        };
        module.add_func(func);
    }

    let mut runs = Vec::new();
    let n_runs = rng.gen_range(1..=3usize);
    for _ in 0..n_runs {
        // Always drive the root; sometimes enter deeper functions
        // directly so even call-graph leaves get non-trivial profiles.
        let f = if rng.gen_bool(0.7) {
            0
        } else {
            rng.gen_range(0..num_funcs)
        };
        let np = module.func(FuncId::from_index(f)).num_params();
        let args = (0..np)
            .map(|_| rng.gen_range(-(1 << 20)..1 << 20))
            .collect();
        runs.push((FuncId::from_index(f), args));
    }

    StressCase { seed, module, runs }
}

/// Emits a structured (benchgen-skeleton) function: reducible but deeply
/// nested, with handlers, gotos, zero-trip loops, and hot/cold texture.
fn gen_structured_function(
    index: usize,
    nparams: &[usize],
    num_funcs: usize,
    target: &Target,
    scale: usize,
    rng: &mut SmallRng,
) -> Function {
    let callees = num_funcs - index - 1;
    let shape = ShapeConfig {
        budget: rng.gen_range(10..=35) * scale,
        loop_prob: 0.35,
        else_prob: 0.5,
        cold_if_prob: 0.35,
        goto_prob: 0.15,
        call_prob: if callees > 0 { 0.15 } else { 0.08 },
        // Zero-trip loops included: lower bound 0.
        loop_trip: (0, 6),
        max_depth: 4,
    };
    let body = gen_body(&shape, rng, callees);
    let style = if rng.gen_bool(0.5) {
        Style::Register
    } else {
        Style::Memory
    };
    let pressure = if rng.gen_bool(0.3) {
        // Near the register-file limit: forces allocator spills too.
        target
            .num_regs()
            .saturating_sub(rng.gen_range(0..=3))
            .max(4)
    } else {
        rng.gen_range(2..=8)
    };
    let cfg = EmitConfig {
        shape,
        pressure,
        // Callers pass exactly this function's declared parameter count,
        // so the declaration must match the pre-drawn signature table.
        num_params: nparams[index],
        data_slots: rng.gen_range(0..=3),
        style,
        num_handlers: rng.gen_range(0..=1),
        handler_goto_frac: 0.5,
        hot_segment_calls: if style == Style::Memory {
            rng.gen_range(0..=2)
        } else {
            0
        },
        crossing_frac: 0.5,
        cold_crossing: 0.7,
        cold_sites: rng.gen_range(0..=1),
    };
    let sub = rng.gen_range(0..u64::MAX / 2);
    emit_function(&format!("f{index}"), target, &cfg, &body, index + 1, sub)
}

/// Draws a raw-CFG function: arbitrary guarded branch targets, multiple
/// exits, and no structural discipline beyond the IR's layout rules.
fn gen_raw_function(
    index: usize,
    nparams: &[usize],
    target: &Target,
    scale: usize,
    rng: &mut SmallRng,
) -> Function {
    for _attempt in 0..64 {
        let func = draw_raw_function(index, nparams, target, scale, rng);
        if spillopt_ir::verify_function(&func, RegDiscipline::Virtual).is_empty() {
            return func;
        }
    }
    // Statistically unreachable fallback: a straight-line function that
    // always verifies, so generation never fails.
    trivial_function(index, nparams[index], target)
}

fn trivial_function(index: usize, num_params: usize, target: &Target) -> Function {
    let mut fb = FunctionBuilder::with_target(format!("f{index}"), num_params, target.clone());
    let b = fb.create_block(Some("entry"));
    fb.switch_to(b);
    let mut acc = fb.li(1);
    for p in 0..num_params {
        let v = fb.param(p);
        acc = fb.bin(BinOp::Xor, Reg::Virt(acc), Reg::Virt(v));
    }
    fb.ret(Some(Reg::Virt(acc)));
    fb.finish()
}

/// Skew classes for branch conditions: `(mask, threshold)` over an
/// accumulator, from near-always-taken to 1-in-64.
const SKEWS: [(i64, i64); 5] = [(15, 14), (15, 8), (15, 4), (15, 1), (63, 1)];

struct RawDraw<'a> {
    fb: FunctionBuilder,
    blocks: Vec<BlockId>,
    accs: Vec<VReg>,
    data_slots: Vec<spillopt_ir::FrameSlot>,
    /// Fuel lives in a frame slot: slots are zero-initialized once per
    /// activation and survive re-execution of the entry block, so loops
    /// back to the entry stay bounded (a register counter re-initialized
    /// in the entry would reset on every back edge).
    fuel_slot: spillopt_ir::FrameSlot,
    limit: VReg,
    nparams: &'a [usize],
    index: usize,
    max_args: usize,
}

impl RawDraw<'_> {
    fn acc(&self, rng: &mut SmallRng) -> VReg {
        self.accs[rng.gen_range(0..self.accs.len())]
    }

    /// One random arithmetic/memory op over the accumulators.
    fn op(&mut self, rng: &mut SmallRng) {
        let d = self.acc(rng);
        let a = self.acc(rng);
        let b = self.acc(rng);
        match rng.gen_range(0..7) {
            0 => self.fb.emit(InstKind::Bin {
                op: BinOp::Add,
                dst: Reg::Virt(d),
                lhs: Reg::Virt(a),
                rhs: Reg::Virt(b),
            }),
            1 => self.fb.emit(InstKind::Bin {
                op: BinOp::Xor,
                dst: Reg::Virt(d),
                lhs: Reg::Virt(a),
                rhs: Reg::Virt(b),
            }),
            2 => self.fb.emit(InstKind::Bin {
                op: BinOp::Sub,
                dst: Reg::Virt(d),
                lhs: Reg::Virt(b),
                rhs: Reg::Virt(a),
            }),
            3 => {
                let k = rng.gen_range(1..64);
                self.fb.emit(InstKind::BinImm {
                    op: BinOp::Mul,
                    dst: Reg::Virt(d),
                    lhs: Reg::Virt(a),
                    imm: 2 * k + 1,
                });
            }
            4 => {
                // LCG mix keeps condition bits lively.
                self.fb.emit(InstKind::BinImm {
                    op: BinOp::Mul,
                    dst: Reg::Virt(d),
                    lhs: Reg::Virt(a),
                    imm: 6364136223846793005u64 as i64,
                });
                self.fb.emit(InstKind::BinImm {
                    op: BinOp::Add,
                    dst: Reg::Virt(d),
                    lhs: Reg::Virt(d),
                    imm: 1442695040888963407u64 as i64,
                });
                self.fb.emit(InstKind::BinImm {
                    op: BinOp::Shr,
                    dst: Reg::Virt(d),
                    lhs: Reg::Virt(d),
                    imm: 7,
                });
            }
            5 if !self.data_slots.is_empty() => {
                let s = self.data_slots[rng.gen_range(0..self.data_slots.len())];
                self.fb.emit(InstKind::Store {
                    src: Reg::Virt(a),
                    slot: s,
                    kind: spillopt_ir::MemKind::Data,
                });
            }
            _ if !self.data_slots.is_empty() => {
                let s = self.data_slots[rng.gen_range(0..self.data_slots.len())];
                let t = self.fb.new_vreg();
                self.fb.emit(InstKind::Load {
                    dst: Reg::Virt(t),
                    slot: s,
                    kind: spillopt_ir::MemKind::Data,
                });
                self.fb.emit(InstKind::Bin {
                    op: BinOp::Xor,
                    dst: Reg::Virt(d),
                    lhs: Reg::Virt(a),
                    rhs: Reg::Virt(t),
                });
            }
            _ => self.fb.emit(InstKind::BinImm {
                op: BinOp::Add,
                dst: Reg::Virt(d),
                lhs: Reg::Virt(a),
                imm: rng.gen_range(1..100),
            }),
        }
    }

    /// A call to a higher-indexed module function or an external,
    /// folding the result into an accumulator (so values cross the call).
    fn call(&mut self, rng: &mut SmallRng) {
        let callees = self.nparams.len() - self.index - 1;
        let internal = callees > 0 && rng.gen_bool(0.6);
        let (callee, nargs) = if internal {
            let j = self.index + 1 + rng.gen_range(0..callees);
            // Internal callees read all their declared parameters.
            (Callee::Func(FuncId::from_index(j)), self.nparams[j])
        } else {
            (
                Callee::External(rng.gen_range(0..8)),
                rng.gen_range(0..=self.max_args),
            )
        };
        let args: Vec<Reg> = (0..nargs).map(|_| Reg::Virt(self.acc(rng))).collect();
        let r = self.fb.call(callee, &args);
        let d = self.acc(rng);
        self.fb.emit(InstKind::Bin {
            op: BinOp::Xor,
            dst: Reg::Virt(d),
            lhs: Reg::Virt(d),
            rhs: Reg::Virt(r),
        });
    }

    /// A skewed branch condition temporary: `t = acc & mask`, plus the
    /// threshold constant.
    fn cond_pair(&mut self, rng: &mut SmallRng) -> (VReg, VReg, Cond) {
        let (mask, thr) = SKEWS[rng.gen_range(0..SKEWS.len())];
        let a = self.acc(rng);
        let t = self.fb.new_vreg();
        self.fb.emit(InstKind::BinImm {
            op: BinOp::And,
            dst: Reg::Virt(t),
            lhs: Reg::Virt(a),
            imm: mask,
        });
        let k = self.fb.li(thr);
        let cond = if rng.gen_bool(0.5) {
            Cond::Lt
        } else {
            Cond::Ge
        };
        (t, k, cond)
    }

    /// Ticks the fuel counter: `cur = load fuel; cur += 1; store cur`.
    /// Returns the incremented value for back-edge guards.
    fn tick_fuel(&mut self) -> VReg {
        let c = self.fb.new_vreg();
        self.fb.emit(InstKind::Load {
            dst: Reg::Virt(c),
            slot: self.fuel_slot,
            kind: spillopt_ir::MemKind::Data,
        });
        self.fb.emit(InstKind::BinImm {
            op: BinOp::Add,
            dst: Reg::Virt(c),
            lhs: Reg::Virt(c),
            imm: 1,
        });
        self.fb.emit(InstKind::Store {
            src: Reg::Virt(c),
            slot: self.fuel_slot,
            kind: spillopt_ir::MemKind::Data,
        });
        c
    }

    /// Folds a few accumulators into a return value and emits `ret`.
    fn ret(&mut self, rng: &mut SmallRng) {
        let mut v = self.acc(rng);
        for _ in 0..rng.gen_range(0..3usize) {
            let o = self.acc(rng);
            v = self.fb.bin(BinOp::Xor, Reg::Virt(v), Reg::Virt(o));
        }
        self.fb.ret(Some(Reg::Virt(v)));
    }
}

fn draw_raw_function(
    index: usize,
    nparams: &[usize],
    target: &Target,
    scale: usize,
    rng: &mut SmallRng,
) -> Function {
    let num_params = nparams[index];
    let mut fb = FunctionBuilder::with_target(format!("f{index}"), num_params, target.clone());
    let num_blocks = rng.gen_range(4..=14usize) * scale;
    let blocks: Vec<BlockId> = (0..num_blocks)
        .map(|i| fb.create_block(if i == 0 { Some("entry") } else { None }))
        .collect();
    fb.switch_to(blocks[0]);

    // Accumulators: a small working set, or one crowding the target's
    // register file (pressure tiers).
    let num_accs = match rng.gen_range(0..3u32) {
        0 => rng.gen_range(2..=4usize),
        1 => rng.gen_range(4..=8usize),
        _ => {
            let n = target.num_regs();
            (n + 2).saturating_sub(rng.gen_range(0..=4)).max(4)
        }
    };
    let mut accs = Vec::new();
    for p in 0..num_params.min(num_accs) {
        accs.push(fb.param(p));
    }
    while accs.len() < num_accs {
        let v = fb.li(rng.gen_range(1..1 << 20));
        accs.push(v);
    }
    let data_slots: Vec<_> = (0..rng.gen_range(0..=3usize))
        .map(|_| fb.new_slot())
        .collect();
    for &s in &data_slots {
        let src = accs[rng.gen_range(0..accs.len())];
        fb.emit(InstKind::Store {
            src: Reg::Virt(src),
            slot: s,
            kind: spillopt_ir::MemKind::Data,
        });
    }
    // Fuel slot (never stored to in the entry; activation-init zero) and
    // the limit constant (re-initializing a constant is harmless).
    let fuel_slot = fb.new_slot();
    let limit = fb.li(rng.gen_range(8..=48));

    // A call-free function keeps its argument registers intact, so its
    // entry block — which re-reads them — may be a loop target. Functions
    // with calls may only loop back to the entry when they read no
    // parameters at all; otherwise a post-call re-execution of the entry
    // would read clobbered argument registers (an undefined-input
    // program, not a test subject).
    let no_calls = rng.gen_bool(0.3);
    let entry_loopable = no_calls || num_params == 0;

    let mut d = RawDraw {
        fb,
        blocks,
        accs,
        data_slots,
        fuel_slot,
        limit,
        nparams,
        index,
        max_args: target.arg_regs().len().min(2),
    };

    for i in 0..num_blocks {
        let b = d.blocks[i];
        d.fb.switch_to(b);
        let fuel = d.tick_fuel();
        for _ in 0..rng.gen_range(0..=4usize) {
            d.op(rng);
        }
        if !no_calls && rng.gen_bool(0.3) {
            d.call(rng);
        }

        let last = i == num_blocks - 1;
        let exit_here = last || (i >= 2 && rng.gen_bool(0.12));
        if exit_here {
            d.ret(rng);
            continue;
        }
        let back_lo = if entry_loopable { 0 } else { 1 };
        let r: f64 = rng.gen();
        if r < 0.55 {
            // Branch: fall through to the next block; the taken target is
            // a guarded backward edge (irreducible loops) or a forward
            // jump over blocks (critical-edge meshes).
            let fall = d.blocks[i + 1];
            let can_back = i >= back_lo;
            let backward = can_back && (rng.gen_bool(0.35) || i + 2 >= num_blocks);
            if backward {
                let t = d.blocks[rng.gen_range(back_lo..=i)];
                d.fb.branch(Cond::Lt, Reg::Virt(fuel), Reg::Virt(d.limit), t, fall);
            } else if i + 2 < num_blocks {
                let t = d.blocks[rng.gen_range(i + 2..num_blocks)];
                let (tv, kv, cond) = d.cond_pair(rng);
                d.fb.branch(cond, Reg::Virt(tv), Reg::Virt(kv), t, fall);
            } else {
                // No room for a forward jump and no backward target:
                // fall through implicitly.
            }
        } else if r < 0.75 {
            // Forward jump (jump edge; may make later blocks join-only).
            let t = d.blocks[rng.gen_range(i + 1..num_blocks)];
            d.fb.jump(t);
        }
        // Otherwise: implicit fall-through into the next block.
    }

    d.fb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{display, parse_module, verify_module};

    #[test]
    fn cases_are_deterministic_and_valid() {
        let target = Target::default();
        for seed in 0..40u64 {
            let a = gen_case(&target, seed);
            let b = gen_case(&target, seed);
            assert_eq!(
                display::module_to_string(&a.module),
                display::module_to_string(&b.module),
                "seed {seed} not deterministic"
            );
            assert_eq!(a.runs, b.runs);
            let errs = verify_module(&a.module, RegDiscipline::Virtual);
            assert!(errs.is_empty(), "seed {seed}: {errs:?}");
            assert!(!a.runs.is_empty());
        }
    }

    #[test]
    fn cases_parse_back_from_text() {
        let target = Target::default();
        for seed in 0..10u64 {
            let case = gen_case(&target, seed);
            let text = display::module_to_string(&case.module);
            let re = parse_module(&text).expect("reparse");
            assert_eq!(re.num_funcs(), case.module.num_funcs());
        }
    }

    #[test]
    fn raw_shapes_reach_interesting_structure() {
        // Across a seed range we must see irreducible or multi-exit or
        // critical-jump-edge shapes — the whole point of the generator.
        let target = Target::default();
        let mut multi_exit = 0;
        let mut crit_jump = 0;
        for seed in 0..30u64 {
            let case = gen_case(&target, seed);
            for (_, f) in case.module.funcs() {
                let cfg = spillopt_ir::Cfg::compute(f);
                if cfg.exit_blocks().len() > 1 {
                    multi_exit += 1;
                }
                if cfg.edge_ids().any(|e| cfg.needs_jump_block(e)) {
                    crit_jump += 1;
                }
            }
        }
        assert!(multi_exit > 5, "multi-exit too rare: {multi_exit}");
        assert!(crit_jump > 5, "critical jump edges too rare: {crit_jump}");
    }

    #[test]
    fn tiny_target_cases_generate() {
        let target = Target::tiny();
        for seed in 0..10u64 {
            let case = gen_case(&target, seed);
            let errs = verify_module(&case.module, RegDiscipline::Virtual);
            assert!(errs.is_empty(), "seed {seed}: {errs:?}");
        }
    }
}
