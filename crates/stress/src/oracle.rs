//! The four differential oracles, applied to one case on one target.
//!
//! For every generated module the checker runs the full pipeline —
//! reference interpretation on the virtual module, Chaitin/Briggs
//! allocation, all four placement techniques priced by the target's
//! [`spillopt_core::SpillCostModel`] — and then validates
//! each transformed program against:
//!
//! 1. **Semantic equivalence** — interpreting the transformed module on
//!    the generation workload must produce the reference outputs, with
//!    the callee-saved convention *dynamically* verified by the
//!    interpreter (any clobbered callee-saved register at a return is an
//!    execution error, not a wrong value);
//! 2. **Model fidelity** — the measured save/restore/jump counters
//!    ([`spillopt_profile::ExecCounts::spill_counts`]) must *equal* the
//!    execution-count prediction
//!    ([`spillopt_core::predicted_spill_counts`]) and be bounded by the
//!    jump-edge model's cost under unit pricing;
//! 3. **Never-worse** — the hierarchical jump-edge placement's predicted
//!    cost must not exceed entry/exit's or Chow's on any target,
//!    including pairing targets (AArch64) where optimality no longer
//!    composes per register;
//! 4. **Optimality gap** (opt-in, [`ExactOptions`]) — the certified
//!    minimum placement cost from `spillopt-exact`'s branch-and-bound
//!    solver bounds hier-jump from below: a hier-jump prediction more
//!    than the configured percentage above the certified optimum fails,
//!    and the measured gaps (for both cost models) are accumulated into
//!    [`ExactStats`] for the `spillopt gap` report.

use spillopt_core::{
    check_placement, insert_placement, placement_cost_with, predicted_spill_counts, run_suite,
    CalleeSavedUsage, Cost, CostModel, Placement, SpillCostModel, SuiteInputs, SuiteOptions,
};
use spillopt_exact::{solve_exact, ExactLimits, ExactOutcome};
use spillopt_ir::{Cfg, FuncId, Module, RegDiscipline, Target};
use spillopt_profile::{EdgeProfile, Machine, SpillCounts};
use spillopt_regalloc::allocate;
use spillopt_targets::TargetSpec;
use std::fmt;

/// The four techniques, in reporting order (matching the driver's
/// `Strategy` names).
pub const STRATEGIES: [&str; 4] = ["baseline", "shrinkwrap", "hier-exec", "hier-jump"];

/// Which oracle (or pipeline stage) a failure belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// The case itself is unusable: the module does not verify, a target
    /// is malformed, or the reference run fails.
    Reference,
    /// The transformed program produced different outputs, violated the
    /// callee-saved convention dynamically, or failed to execute.
    Semantic,
    /// Measured spill counters disagree with the cost model's prediction.
    Fidelity,
    /// Hierarchical (jump model) predicted worse than entry/exit or Chow.
    NeverWorse,
    /// A technique produced a placement that failed static validity
    /// checking (surfaced structurally by `spillopt_core::run_suite`).
    InvalidPlacement,
    /// A pipeline stage panicked (allocator non-convergence, insertion
    /// bug, ...).
    Panic,
    /// Hierarchical (jump model) predicted more than the configured gap
    /// above the exact solver's certified optimum — or the solver's own
    /// certificate failed its sanity cross-checks.
    Suboptimal,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureKind::Reference => "reference",
            FailureKind::Semantic => "semantic-equivalence",
            FailureKind::Fidelity => "model-fidelity",
            FailureKind::NeverWorse => "never-worse",
            FailureKind::InvalidPlacement => "invalid-placement",
            FailureKind::Panic => "panic",
            FailureKind::Suboptimal => "suboptimal",
        };
        f.write_str(s)
    }
}

/// One oracle violation.
#[derive(Clone, Debug)]
pub struct OracleFailure {
    /// Which oracle fired.
    pub kind: FailureKind,
    /// The technique being checked, when the failure is per-technique.
    pub strategy: Option<&'static str>,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.strategy {
            Some(s) => write!(f, "[{}] {}: {}", self.kind, s, self.detail),
            None => write!(f, "[{}] {}", self.kind, self.detail),
        }
    }
}

/// Configuration for the fourth (optimality-gap) oracle.
#[derive(Clone, Copy, Debug)]
pub struct ExactOptions {
    /// Allowed hier-jump overshoot above the certified optimum, in
    /// percent of the optimum. A failure fires only beyond this.
    pub gap_percent: u64,
    /// Size/effort envelope for the exact solver; out-of-envelope
    /// functions are counted as skipped, never failed.
    pub limits: ExactLimits,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            gap_percent: DEFAULT_GAP_PERCENT,
            limits: ExactLimits::default(),
        }
    }
}

/// The default [`ExactOptions::gap_percent`]: the smallest round bound
/// that the whole stress corpus (500 seeds × every registered target)
/// passes, i.e. the measured worst-case hier-jump optimality gap. The
/// corpus worst case is stress seed 92 — hier-jump 3 vs certified
/// optimum 2 on every registered target, a 50% relative gap on a
/// 1-transition absolute overshoot (checked in as an `#[ignore]`d
/// regression in `crates/core/tests/stress_regressions.rs`); every
/// other case measures ≤ 10%.
pub const DEFAULT_GAP_PERCENT: u64 = 50;

/// Histogram of measured optimality gaps under one cost model.
#[derive(Clone, Copy, Debug, Default)]
pub struct GapHist {
    /// Placements exactly at the certified optimum.
    pub zero: usize,
    /// Gap in (0, 1] percent of the optimum.
    pub le1: usize,
    /// Gap in (1, 5] percent.
    pub le5: usize,
    /// Gap in (5, 10] percent.
    pub le10: usize,
    /// Gap above 10 percent.
    pub gt10: usize,
    /// Worst observed gap, in permille of the optimum (saturating; a
    /// nonzero cost over a zero optimum saturates the scale).
    pub max_permille: u64,
}

impl GapHist {
    /// Records one `(actual, optimum)` raw-cost pair.
    pub fn record(&mut self, actual: u64, optimum: u64) {
        let excess = actual.saturating_sub(optimum);
        let permille = if excess == 0 {
            0
        } else if optimum == 0 {
            u64::MAX
        } else {
            ((excess as u128 * 1000) / optimum as u128).min(u64::MAX as u128) as u64
        };
        match permille {
            0 => self.zero += 1,
            1..=10 => self.le1 += 1,
            11..=50 => self.le5 += 1,
            51..=100 => self.le10 += 1,
            _ => self.gt10 += 1,
        }
        self.max_permille = self.max_permille.max(permille);
    }

    /// Folds another histogram into this one.
    pub fn accumulate(&mut self, other: &GapHist) {
        self.zero += other.zero;
        self.le1 += other.le1;
        self.le5 += other.le5;
        self.le10 += other.le10;
        self.gt10 += other.gt10;
        self.max_permille = self.max_permille.max(other.max_permille);
    }

    /// Total samples recorded.
    pub fn total(&self) -> usize {
        self.zero + self.le1 + self.le5 + self.le10 + self.gt10
    }
}

/// Exact-solver coverage and measured gaps under one cost model.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModelGapStats {
    /// Functions whose optimum was certified.
    pub solved: usize,
    /// Functions where the node budget ran out (uncertified bound).
    pub bounded: usize,
    /// Functions outside the solver's size envelope.
    pub skipped: usize,
    /// Gap of the technique under test vs the certified optimum.
    pub hist: GapHist,
}

impl ModelGapStats {
    /// Folds another stats block into this one.
    pub fn accumulate(&mut self, other: &ModelGapStats) {
        self.solved += other.solved;
        self.bounded += other.bounded;
        self.skipped += other.skipped;
        self.hist.accumulate(&other.hist);
    }
}

/// Per-case output of the optimality-gap oracle.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactStats {
    /// Hier-jump vs the jump-edge-model optimum (the failing oracle).
    pub jump: ModelGapStats,
    /// Hier-exec vs the execution-count-model optimum (report-only).
    pub exec: ModelGapStats,
}

impl ExactStats {
    /// Folds another stats block into this one.
    pub fn accumulate(&mut self, other: &ExactStats) {
        self.jump.accumulate(&other.jump);
        self.exec.accumulate(&other.exec);
    }
}

/// Statistics of one passing case.
#[derive(Clone, Copy, Debug, Default)]
pub struct CaseReport {
    /// Functions in the module.
    pub functions: usize,
    /// Functions that used callee-saved registers (were placed).
    pub placed_functions: usize,
    /// Technique × function placements checked.
    pub placements_checked: usize,
    /// Optimality-gap oracle coverage and measurements (all zero unless
    /// the case ran with [`ExactOptions`]).
    pub exact: ExactStats,
}

fn fail(kind: FailureKind, strategy: Option<&'static str>, detail: String) -> OracleFailure {
    OracleFailure {
        kind,
        strategy,
        detail,
    }
}

/// Executes `runs` on `module`, returning per-run outputs and the
/// accumulated counters/profiles.
fn execute<'a>(
    module: &'a Module,
    target: &'a Target,
    runs: &[(FuncId, Vec<i64>)],
) -> Result<(Vec<i64>, Machine<'a>), spillopt_profile::ExecError> {
    let mut vm = Machine::new(module, target);
    // Far above any legitimate generated workload (≈5M instructions at
    // the nesting/fuel extremes) but low enough that minimization
    // probes hitting an accidental infinite loop fail fast.
    vm.set_fuel(1 << 26);
    let mut outputs = Vec::with_capacity(runs.len());
    for (f, args) in runs {
        outputs.push(vm.call(*f, args)?);
    }
    Ok((outputs, vm))
}

/// Runs the three always-on oracles over one `(module, workload)` case
/// on one target ([`check_case_with`] without the optimality-gap
/// oracle).
///
/// # Errors
///
/// Returns the first [`OracleFailure`] encountered; the caller is
/// expected to minimize the module and report it.
pub fn check_case(
    module: &Module,
    runs: &[(FuncId, Vec<i64>)],
    spec: &TargetSpec,
) -> Result<CaseReport, OracleFailure> {
    check_case_with(module, runs, spec, None)
}

/// Runs the oracles over one `(module, workload)` case on one target;
/// with `exact` set, every placed function is additionally solved to
/// certified optimality and hier-jump is held to the configured gap.
///
/// # Errors
///
/// Returns the first [`OracleFailure`] encountered.
pub fn check_case_with(
    module: &Module,
    runs: &[(FuncId, Vec<i64>)],
    spec: &TargetSpec,
    exact: Option<&ExactOptions>,
) -> Result<CaseReport, OracleFailure> {
    // Outermost per-case span: closing it also flushes this thread's
    // event buffer, so stress workers drain at every case boundary.
    let _case = spillopt_obs::span("stress_case");
    let target = spec.try_to_target().map_err(|e| {
        fail(
            FailureKind::Reference,
            None,
            format!("target `{}` malformed: {e}", spec.name),
        )
    })?;
    let errs = spillopt_ir::verify_module(module, RegDiscipline::Virtual);
    if !errs.is_empty() {
        return Err(fail(
            FailureKind::Reference,
            None,
            format!("generated module does not verify: {}", render_errs(&errs)),
        ));
    }

    // Reference run on the virtual module; doubles as the training
    // profile (measured run and profile must share the workload for the
    // fidelity oracle's equality to be exact).
    let reference_span = spillopt_obs::span("oracle_reference");
    let (reference, vm) = execute(module, &target, runs).map_err(|e| {
        fail(
            FailureKind::Reference,
            None,
            format!("reference run failed: {e}"),
        )
    })?;
    let profiles: Vec<EdgeProfile> = module.func_ids().map(|f| vm.edge_profile(f)).collect();
    drop(vm);
    drop(reference_span);

    // Allocation (shared by all techniques).
    let allocate_span = spillopt_obs::span("oracle_allocate");
    let mut allocated = module.clone();
    for f in module.func_ids() {
        allocate(allocated.func_mut(f), &target, Some(&profiles[f.index()]));
        let errs = spillopt_ir::verify_function(allocated.func(f), RegDiscipline::Physical);
        if !errs.is_empty() {
            return Err(fail(
                FailureKind::Semantic,
                None,
                format!(
                    "post-allocation verification failed in `{}`: {}",
                    allocated.func(f).name(),
                    render_errs(&errs)
                ),
            ));
        }
    }
    drop(allocate_span);

    // Placements: all four techniques per function that needs them.
    let cfgs: Vec<Cfg> = allocated
        .func_ids()
        .map(|f| Cfg::compute(allocated.func(f)))
        .collect();
    let usages: Vec<CalleeSavedUsage> = allocated
        .func_ids()
        .map(|f| CalleeSavedUsage::from_function(allocated.func(f), &cfgs[f.index()], &target))
        .collect();
    // Per function: placements in STRATEGIES order, plus predicted costs.
    let mut placements: Vec<Option<[Placement; 4]>> = Vec::new();
    let mut report = CaseReport {
        functions: module.num_funcs(),
        ..CaseReport::default()
    };
    for f in allocated.func_ids() {
        let i = f.index();
        if usages[i].is_empty() {
            placements.push(None);
            continue;
        }
        report.placed_functions += 1;
        let _place = spillopt_obs::span("oracle_place");
        let inputs = SuiteInputs::compute(&cfgs[i], &usages[i], &profiles[i]);
        let suite =
            run_suite(&cfgs[i], &inputs, &SuiteOptions::priced(spec.costs)).map_err(|e| {
                let strategy = STRATEGIES
                    .iter()
                    .zip([
                        "entry_exit",
                        "chow",
                        "hierarchical_exec",
                        "hierarchical_jump",
                    ])
                    .find(|(_, label)| *label == e.technique)
                    .map(|(s, _)| *s);
                fail(
                    FailureKind::InvalidPlacement,
                    strategy,
                    format!("`{}` on {}: {e}", allocated.func(f).name(), spec.name),
                )
            })?;
        // Oracle 3: the paper's guarantee, priced by the target's model.
        let never_worse_span = spillopt_obs::span("oracle_never_worse");
        let [entry_exit, chow, _, hier_jump] = suite.predicted;
        if suite.predicted[3] > entry_exit || suite.predicted[3] > chow {
            return Err(fail(
                FailureKind::NeverWorse,
                Some(STRATEGIES[3]),
                format!(
                    "`{}` on {}: hier-jump predicted {:?} vs entry/exit {:?}, chow {:?}",
                    allocated.func(f).name(),
                    spec.name,
                    hier_jump,
                    entry_exit,
                    chow
                ),
            ));
        }
        drop(never_worse_span);
        // Oracle 4 (opt-in): certified optimality gap.
        if let Some(opts) = exact {
            let _exact = spillopt_obs::span("oracle_exact");
            check_exact(
                &mut report.exact,
                opts,
                spec,
                allocated.func(f).name(),
                &cfgs[i],
                &usages[i],
                &profiles[i],
                &suite,
            )?;
        }
        placements.push(Some([
            suite.entry_exit,
            suite.chow,
            suite.hierarchical_exec.placement,
            suite.hierarchical_jump.placement,
        ]));
    }

    // Per technique: insert, verify, execute, compare.
    for (s, &name) in STRATEGIES.iter().enumerate() {
        let insert_span = spillopt_obs::span("oracle_insert");
        let mut placed = allocated.clone();
        let mut predicted = SpillCounts::default();
        let mut predicted_bound = Cost::ZERO;
        for f in allocated.func_ids() {
            let i = f.index();
            let Some(ps) = &placements[i] else { continue };
            report.placements_checked += 1;
            predicted = predicted.add(&predicted_spill_counts(&cfgs[i], &profiles[i], &ps[s]));
            predicted_bound += placement_cost_with(
                CostModel::JumpEdge,
                &SpillCostModel::UNIT,
                &cfgs[i],
                &profiles[i],
                &ps[s],
            );
            insert_placement(placed.func_mut(f), &cfgs[i], &ps[s]);
            let errs = spillopt_ir::verify_function(placed.func(f), RegDiscipline::Physical);
            if !errs.is_empty() {
                return Err(fail(
                    FailureKind::Semantic,
                    Some(name),
                    format!(
                        "inserted `{}` does not verify: {}",
                        placed.func(f).name(),
                        render_errs(&errs)
                    ),
                ));
            }
        }

        drop(insert_span);

        let semantic_span = spillopt_obs::span("oracle_semantic");
        let (outputs, vm) = execute(&placed, &target, runs).map_err(|e| {
            fail(
                FailureKind::Semantic,
                Some(name),
                format!("transformed run failed: {e}"),
            )
        })?;
        // Oracle 1: semantic equivalence.
        if outputs != reference {
            return Err(fail(
                FailureKind::Semantic,
                Some(name),
                format!("outputs changed: reference {reference:?}, transformed {outputs:?}"),
            ));
        }
        drop(semantic_span);
        // Oracle 2: model fidelity. The execution-count accounting must be
        // exact; the jump-edge cost (unit pricing) bounds the total.
        let _fidelity = spillopt_obs::span("oracle_fidelity");
        let measured = vm.counts().spill_counts();
        let diff = predicted.diff(&measured);
        if !diff.is_empty() {
            let rendered: Vec<String> = diff
                .iter()
                .map(|(n, p, m)| format!("{n}: predicted {p}, measured {m}"))
                .collect();
            return Err(fail(FailureKind::Fidelity, Some(name), rendered.join("; ")));
        }
        if Cost::from_count(measured.total()) > predicted_bound {
            return Err(fail(
                FailureKind::Fidelity,
                Some(name),
                format!(
                    "measured total {} exceeds jump-edge model bound {:?}",
                    measured.total(),
                    predicted_bound
                ),
            ));
        }
    }

    Ok(report)
}

/// The optimality-gap oracle for one placed function: solve to
/// certified optimality under both cost models, record the measured
/// gaps, and fail when hier-jump overshoots the jump-model optimum by
/// more than the configured percentage.
///
/// The certificate itself is cross-checked on every case — a claimed
/// minimum above any technique's prediction, or an invalid "optimal"
/// placement, is a solver bug and fails loudly rather than mis-blaming
/// the technique.
#[allow(clippy::too_many_arguments)]
fn check_exact(
    stats: &mut ExactStats,
    opts: &ExactOptions,
    spec: &TargetSpec,
    func_name: &str,
    cfg: &Cfg,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
    suite: &spillopt_core::PlacementSuite,
) -> Result<(), OracleFailure> {
    let seeds: [&Placement; 4] = [
        &suite.entry_exit,
        &suite.chow,
        &suite.hierarchical_exec.placement,
        &suite.hierarchical_jump.placement,
    ];

    // Jump-edge model: the oracle that can fail the case.
    match solve_exact(
        cfg,
        usage,
        profile,
        CostModel::JumpEdge,
        &spec.costs,
        &seeds,
        &opts.limits,
    ) {
        ExactOutcome::Solved(sol) => {
            stats.jump.solved += 1;
            if !check_placement(cfg, usage, &sol.placement).is_empty() {
                return Err(fail(
                    FailureKind::Suboptimal,
                    None,
                    format!(
                        "`{func_name}` on {}: exact solver emitted an invalid optimal placement",
                        spec.name
                    ),
                ));
            }
            for (s, predicted) in suite.predicted.iter().enumerate() {
                if sol.optimum.raw() > predicted.raw() {
                    return Err(fail(
                        FailureKind::Suboptimal,
                        Some(STRATEGIES[s]),
                        format!(
                            "`{func_name}` on {}: certified \"optimum\" {} exceeds {}'s \
                             predicted {} — exact solver bug",
                            spec.name, sol.optimum, STRATEGIES[s], predicted
                        ),
                    ));
                }
            }
            let actual = suite.predicted[3].raw();
            let optimum = sol.optimum.raw();
            stats.jump.hist.record(actual, optimum);
            let allowed = optimum as u128 + (optimum as u128 * opts.gap_percent as u128) / 100;
            if actual as u128 > allowed {
                return Err(fail(
                    FailureKind::Suboptimal,
                    Some(STRATEGIES[3]),
                    format!(
                        "`{func_name}` on {}: hier-jump predicted {} vs certified optimum {} \
                         (allowed gap {}%, certified in {} nodes)",
                        spec.name, suite.predicted[3], sol.optimum, opts.gap_percent, sol.nodes
                    ),
                ));
            }
        }
        ExactOutcome::Bounded(_) => stats.jump.bounded += 1,
        ExactOutcome::Skipped(_) => stats.jump.skipped += 1,
    }

    // Execution-count model: measured for the gap report, never failed —
    // except when the certificate contradicts hier-exec's own price,
    // which again means the solver is wrong.
    match solve_exact(
        cfg,
        usage,
        profile,
        CostModel::ExecutionCount,
        &spec.costs,
        &seeds,
        &opts.limits,
    ) {
        ExactOutcome::Solved(sol) => {
            let actual = placement_cost_with(
                CostModel::ExecutionCount,
                &spec.costs,
                cfg,
                profile,
                &suite.hierarchical_exec.placement,
            );
            if sol.optimum.raw() > actual.raw() {
                return Err(fail(
                    FailureKind::Suboptimal,
                    Some(STRATEGIES[2]),
                    format!(
                        "`{func_name}` on {}: certified exec-model \"optimum\" {} exceeds \
                         hier-exec's cost {} — exact solver bug",
                        spec.name, sol.optimum, actual
                    ),
                ));
            }
            stats.exec.solved += 1;
            stats.exec.hist.record(actual.raw(), sol.optimum.raw());
        }
        ExactOutcome::Bounded(_) => stats.exec.bounded += 1,
        ExactOutcome::Skipped(_) => stats.exec.skipped += 1,
    }
    Ok(())
}

fn render_errs(errs: &[spillopt_ir::VerifyError]) -> String {
    errs.iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;

    #[test]
    fn a_healthy_case_passes_all_oracles() {
        let spec = spillopt_targets::pa_risc_like();
        let target = spec.to_target();
        let case = gen_case(&target, 1);
        let report = check_case(&case.module, &case.runs, &spec).expect("oracles pass");
        assert_eq!(report.functions, case.module.num_funcs());
    }

    #[test]
    fn a_broken_module_is_a_reference_failure() {
        let spec = spillopt_targets::pa_risc_like();
        // An empty module trivially passes; a module with an un-verifiable
        // function must be flagged as unusable, not crash.
        let mut m = Module::new("bad");
        let f = m.add_func(spillopt_ir::Function::new("empty"));
        let err = check_case(&m, &[(f, vec![])], &spec).unwrap_err();
        assert_eq!(err.kind, FailureKind::Reference);
    }
}
