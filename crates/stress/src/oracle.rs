//! The three differential oracles, applied to one case on one target.
//!
//! For every generated module the checker runs the full pipeline —
//! reference interpretation on the virtual module, Chaitin/Briggs
//! allocation, all four placement techniques priced by the target's
//! [`spillopt_core::SpillCostModel`] — and then validates
//! each transformed program against:
//!
//! 1. **Semantic equivalence** — interpreting the transformed module on
//!    the generation workload must produce the reference outputs, with
//!    the callee-saved convention *dynamically* verified by the
//!    interpreter (any clobbered callee-saved register at a return is an
//!    execution error, not a wrong value);
//! 2. **Model fidelity** — the measured save/restore/jump counters
//!    ([`spillopt_profile::ExecCounts::spill_counts`]) must *equal* the
//!    execution-count prediction
//!    ([`spillopt_core::predicted_spill_counts`]) and be bounded by the
//!    jump-edge model's cost under unit pricing;
//! 3. **Never-worse** — the hierarchical jump-edge placement's predicted
//!    cost must not exceed entry/exit's or Chow's on any target,
//!    including pairing targets (AArch64) where optimality no longer
//!    composes per register.

use spillopt_core::{
    insert_placement, placement_cost_with, predicted_spill_counts, run_suite, CalleeSavedUsage,
    Cost, CostModel, Placement, SpillCostModel, SuiteInputs, SuiteOptions,
};
use spillopt_ir::{Cfg, FuncId, Module, RegDiscipline, Target};
use spillopt_profile::{EdgeProfile, Machine, SpillCounts};
use spillopt_regalloc::allocate;
use spillopt_targets::TargetSpec;
use std::fmt;

/// The four techniques, in reporting order (matching the driver's
/// `Strategy` names).
pub const STRATEGIES: [&str; 4] = ["baseline", "shrinkwrap", "hier-exec", "hier-jump"];

/// Which oracle (or pipeline stage) a failure belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// The case itself is unusable: the module does not verify, a target
    /// is malformed, or the reference run fails.
    Reference,
    /// The transformed program produced different outputs, violated the
    /// callee-saved convention dynamically, or failed to execute.
    Semantic,
    /// Measured spill counters disagree with the cost model's prediction.
    Fidelity,
    /// Hierarchical (jump model) predicted worse than entry/exit or Chow.
    NeverWorse,
    /// A technique produced a placement that failed static validity
    /// checking (surfaced structurally by `spillopt_core::run_suite`).
    InvalidPlacement,
    /// A pipeline stage panicked (allocator non-convergence, insertion
    /// bug, ...).
    Panic,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureKind::Reference => "reference",
            FailureKind::Semantic => "semantic-equivalence",
            FailureKind::Fidelity => "model-fidelity",
            FailureKind::NeverWorse => "never-worse",
            FailureKind::InvalidPlacement => "invalid-placement",
            FailureKind::Panic => "panic",
        };
        f.write_str(s)
    }
}

/// One oracle violation.
#[derive(Clone, Debug)]
pub struct OracleFailure {
    /// Which oracle fired.
    pub kind: FailureKind,
    /// The technique being checked, when the failure is per-technique.
    pub strategy: Option<&'static str>,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.strategy {
            Some(s) => write!(f, "[{}] {}: {}", self.kind, s, self.detail),
            None => write!(f, "[{}] {}", self.kind, self.detail),
        }
    }
}

/// Statistics of one passing case.
#[derive(Clone, Copy, Debug, Default)]
pub struct CaseReport {
    /// Functions in the module.
    pub functions: usize,
    /// Functions that used callee-saved registers (were placed).
    pub placed_functions: usize,
    /// Technique × function placements checked.
    pub placements_checked: usize,
}

fn fail(kind: FailureKind, strategy: Option<&'static str>, detail: String) -> OracleFailure {
    OracleFailure {
        kind,
        strategy,
        detail,
    }
}

/// Executes `runs` on `module`, returning per-run outputs and the
/// accumulated counters/profiles.
fn execute<'a>(
    module: &'a Module,
    target: &'a Target,
    runs: &[(FuncId, Vec<i64>)],
) -> Result<(Vec<i64>, Machine<'a>), spillopt_profile::ExecError> {
    let mut vm = Machine::new(module, target);
    // Far above any legitimate generated workload (≈5M instructions at
    // the nesting/fuel extremes) but low enough that minimization
    // probes hitting an accidental infinite loop fail fast.
    vm.set_fuel(1 << 26);
    let mut outputs = Vec::with_capacity(runs.len());
    for (f, args) in runs {
        outputs.push(vm.call(*f, args)?);
    }
    Ok((outputs, vm))
}

/// Runs all three oracles over one `(module, workload)` case on one
/// target.
///
/// # Errors
///
/// Returns the first [`OracleFailure`] encountered; the caller is
/// expected to minimize the module and report it.
pub fn check_case(
    module: &Module,
    runs: &[(FuncId, Vec<i64>)],
    spec: &TargetSpec,
) -> Result<CaseReport, OracleFailure> {
    let target = spec.try_to_target().map_err(|e| {
        fail(
            FailureKind::Reference,
            None,
            format!("target `{}` malformed: {e}", spec.name),
        )
    })?;
    let errs = spillopt_ir::verify_module(module, RegDiscipline::Virtual);
    if !errs.is_empty() {
        return Err(fail(
            FailureKind::Reference,
            None,
            format!("generated module does not verify: {}", render_errs(&errs)),
        ));
    }

    // Reference run on the virtual module; doubles as the training
    // profile (measured run and profile must share the workload for the
    // fidelity oracle's equality to be exact).
    let (reference, vm) = execute(module, &target, runs).map_err(|e| {
        fail(
            FailureKind::Reference,
            None,
            format!("reference run failed: {e}"),
        )
    })?;
    let profiles: Vec<EdgeProfile> = module.func_ids().map(|f| vm.edge_profile(f)).collect();
    drop(vm);

    // Allocation (shared by all techniques).
    let mut allocated = module.clone();
    for f in module.func_ids() {
        allocate(allocated.func_mut(f), &target, Some(&profiles[f.index()]));
        let errs = spillopt_ir::verify_function(allocated.func(f), RegDiscipline::Physical);
        if !errs.is_empty() {
            return Err(fail(
                FailureKind::Semantic,
                None,
                format!(
                    "post-allocation verification failed in `{}`: {}",
                    allocated.func(f).name(),
                    render_errs(&errs)
                ),
            ));
        }
    }

    // Placements: all four techniques per function that needs them.
    let cfgs: Vec<Cfg> = allocated
        .func_ids()
        .map(|f| Cfg::compute(allocated.func(f)))
        .collect();
    let usages: Vec<CalleeSavedUsage> = allocated
        .func_ids()
        .map(|f| CalleeSavedUsage::from_function(allocated.func(f), &cfgs[f.index()], &target))
        .collect();
    // Per function: placements in STRATEGIES order, plus predicted costs.
    let mut placements: Vec<Option<[Placement; 4]>> = Vec::new();
    let mut report = CaseReport {
        functions: module.num_funcs(),
        ..CaseReport::default()
    };
    for f in allocated.func_ids() {
        let i = f.index();
        if usages[i].is_empty() {
            placements.push(None);
            continue;
        }
        report.placed_functions += 1;
        let inputs = SuiteInputs::compute(&cfgs[i], &usages[i], &profiles[i]);
        let suite =
            run_suite(&cfgs[i], &inputs, &SuiteOptions::priced(spec.costs)).map_err(|e| {
                let strategy = STRATEGIES
                    .iter()
                    .zip([
                        "entry_exit",
                        "chow",
                        "hierarchical_exec",
                        "hierarchical_jump",
                    ])
                    .find(|(_, label)| *label == e.technique)
                    .map(|(s, _)| *s);
                fail(
                    FailureKind::InvalidPlacement,
                    strategy,
                    format!("`{}` on {}: {e}", allocated.func(f).name(), spec.name),
                )
            })?;
        // Oracle 3: the paper's guarantee, priced by the target's model.
        let [entry_exit, chow, _, hier_jump] = suite.predicted;
        if suite.predicted[3] > entry_exit || suite.predicted[3] > chow {
            return Err(fail(
                FailureKind::NeverWorse,
                Some(STRATEGIES[3]),
                format!(
                    "`{}` on {}: hier-jump predicted {:?} vs entry/exit {:?}, chow {:?}",
                    allocated.func(f).name(),
                    spec.name,
                    hier_jump,
                    entry_exit,
                    chow
                ),
            ));
        }
        placements.push(Some([
            suite.entry_exit,
            suite.chow,
            suite.hierarchical_exec.placement,
            suite.hierarchical_jump.placement,
        ]));
    }

    // Per technique: insert, verify, execute, compare.
    for (s, &name) in STRATEGIES.iter().enumerate() {
        let mut placed = allocated.clone();
        let mut predicted = SpillCounts::default();
        let mut predicted_bound = Cost::ZERO;
        for f in allocated.func_ids() {
            let i = f.index();
            let Some(ps) = &placements[i] else { continue };
            report.placements_checked += 1;
            predicted = predicted.add(&predicted_spill_counts(&cfgs[i], &profiles[i], &ps[s]));
            predicted_bound += placement_cost_with(
                CostModel::JumpEdge,
                &SpillCostModel::UNIT,
                &cfgs[i],
                &profiles[i],
                &ps[s],
            );
            insert_placement(placed.func_mut(f), &cfgs[i], &ps[s]);
            let errs = spillopt_ir::verify_function(placed.func(f), RegDiscipline::Physical);
            if !errs.is_empty() {
                return Err(fail(
                    FailureKind::Semantic,
                    Some(name),
                    format!(
                        "inserted `{}` does not verify: {}",
                        placed.func(f).name(),
                        render_errs(&errs)
                    ),
                ));
            }
        }

        let (outputs, vm) = execute(&placed, &target, runs).map_err(|e| {
            fail(
                FailureKind::Semantic,
                Some(name),
                format!("transformed run failed: {e}"),
            )
        })?;
        // Oracle 1: semantic equivalence.
        if outputs != reference {
            return Err(fail(
                FailureKind::Semantic,
                Some(name),
                format!("outputs changed: reference {reference:?}, transformed {outputs:?}"),
            ));
        }
        // Oracle 2: model fidelity. The execution-count accounting must be
        // exact; the jump-edge cost (unit pricing) bounds the total.
        let measured = vm.counts().spill_counts();
        let diff = predicted.diff(&measured);
        if !diff.is_empty() {
            let rendered: Vec<String> = diff
                .iter()
                .map(|(n, p, m)| format!("{n}: predicted {p}, measured {m}"))
                .collect();
            return Err(fail(FailureKind::Fidelity, Some(name), rendered.join("; ")));
        }
        if Cost::from_count(measured.total()) > predicted_bound {
            return Err(fail(
                FailureKind::Fidelity,
                Some(name),
                format!(
                    "measured total {} exceeds jump-edge model bound {:?}",
                    measured.total(),
                    predicted_bound
                ),
            ));
        }
    }

    Ok(report)
}

fn render_errs(errs: &[spillopt_ir::VerifyError]) -> String {
    errs.iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;

    #[test]
    fn a_healthy_case_passes_all_oracles() {
        let spec = spillopt_targets::pa_risc_like();
        let target = spec.to_target();
        let case = gen_case(&target, 1);
        let report = check_case(&case.module, &case.runs, &spec).expect("oracles pass");
        assert_eq!(report.functions, case.module.num_funcs());
    }

    #[test]
    fn a_broken_module_is_a_reference_failure() {
        let spec = spillopt_targets::pa_risc_like();
        // An empty module trivially passes; a module with an un-verifiable
        // function must be flagged as unusable, not crash.
        let mut m = Module::new("bad");
        let f = m.add_func(spillopt_ir::Function::new("empty"));
        let err = check_case(&m, &[(f, vec![])], &spec).unwrap_err();
        assert_eq!(err.kind, FailureKind::Reference);
    }
}
