//! Text-format round-trip property over stress-generated modules:
//! `display → parse → display` must reach a fixpoint after one trip,
//! and the reparsed module must verify and preserve structure. The
//! generator's irreducible/multi-exit/critical-mesh shapes drive the
//! parser through corners the SPEC stand-ins never touch.

use proptest::prelude::*;
use rand::Rng;
use spillopt_ir::{display, parse_module, RegDiscipline, Target};
use spillopt_stress::{gen_case, StressCase};

/// Draws a stress case for a uniformly random seed.
#[derive(Debug)]
struct CaseStrategy {
    target: Target,
}

impl Strategy for CaseStrategy {
    type Value = StressCase;
    fn sample(&self, rng: &mut proptest::TestRng) -> StressCase {
        gen_case(&self.target, rng.gen_range(0..1 << 48))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn display_parse_display_is_a_fixpoint(case in CaseStrategy { target: Target::default() }) {
        let text = display::module_to_string(&case.module);
        let reparsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("seed {}: reparse failed: {e}\n{text}", case.seed));
        let text2 = display::module_to_string(&reparsed);
        prop_assert_eq!(&text2, &text, "seed {} not a fixpoint", case.seed);

        // Structure preserved and still valid.
        prop_assert_eq!(reparsed.num_funcs(), case.module.num_funcs());
        prop_assert_eq!(reparsed.num_insts(), case.module.num_insts());
        let errs = spillopt_ir::verify_module(&reparsed, RegDiscipline::Virtual);
        prop_assert!(errs.is_empty(), "seed {}: reparse invalid: {errs:?}", case.seed);

        // A second trip is byte-identical too (true fixpoint, not a
        // 2-cycle).
        let again = parse_module(&text2).expect("second reparse");
        prop_assert_eq!(display::module_to_string(&again), text2);
    }

    #[test]
    fn tiny_target_modules_roundtrip(case in CaseStrategy { target: Target::tiny() }) {
        let text = display::module_to_string(&case.module);
        let reparsed = parse_module(&text).expect("reparse");
        prop_assert_eq!(display::module_to_string(&reparsed), text);
    }
}
