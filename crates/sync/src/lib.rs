//! The workspace's single concurrency facade.
//!
//! Every crate in the workspace imports its synchronization primitives
//! (`Mutex`, `Condvar`, `RwLock`, `Once`, `OnceLock`, the atomics) and
//! thread entry points (`thread::spawn`, `thread::scope`) from here
//! instead of `std::sync` / `std::thread` — a repo lint
//! (`tests/facade_lint.rs` in the root package) keeps it that way.
//!
//! **Normal builds** (the default): this crate is a *zero-cost*
//! re-export of the std types. No wrappers, no indirection — the
//! facade compiles away entirely, so the hot paths pay nothing.
//!
//! **Model builds** (`--features model`): the same names resolve to
//! dual-mode wrappers. Outside a model exploration they delegate to
//! std, so ordinary tests still pass with the feature enabled. Inside
//! `model::check` every facade operation becomes a scheduling point
//! of a deterministic cooperative scheduler that explores thread
//! interleavings exhaustively under a preemption bound (in the style
//! of loom / CHESS), maintains vector clocks for happens-before
//! reasoning, and reports:
//!
//! - **data races** on `model::RaceCell` accesses unordered by
//!   happens-before,
//! - **deadlocks** (every live thread blocked), including lost-notify
//!   deadlocks on `Condvar` (the report counts notifies that found no
//!   waiter),
//! - **panics** reached under some interleaving (assertion failures in
//!   scenarios double as checked invariants).
//!
//! See `README.md` ("Concurrency model & verification") for how the
//! workspace's model suites are organized and run.

#![warn(missing_docs)]

#[cfg(not(feature = "model"))]
pub use std::sync::{
    Arc, Barrier, Condvar, LockResult, Mutex, MutexGuard, Once, OnceLock, PoisonError, RwLock,
    RwLockReadGuard, RwLockWriteGuard, TryLockError, TryLockResult, WaitTimeoutResult, Weak,
};

/// Atomic types (`std::sync::atomic` in normal builds).
#[cfg(not(feature = "model"))]
pub mod atomic {
    pub use std::sync::atomic::*;
}

/// Thread entry points (`std::thread` in normal builds).
#[cfg(not(feature = "model"))]
pub mod thread {
    pub use std::thread::*;
}

#[cfg(feature = "model")]
mod facade;
#[cfg(feature = "model")]
pub use facade::{
    Condvar, Mutex, MutexGuard, Once, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
#[cfg(feature = "model")]
pub use std::sync::{
    Arc, Barrier, LockResult, PoisonError, TryLockError, TryLockResult, WaitTimeoutResult, Weak,
};

/// Atomic types (dual-mode wrappers in model builds).
#[cfg(feature = "model")]
pub mod atomic {
    pub use super::facade::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}

/// Thread entry points (dual-mode wrappers in model builds).
#[cfg(feature = "model")]
pub mod thread {
    pub use super::facade::thread::{
        available_parallelism, scope, sleep, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle,
    };
    pub use std::thread::{panicking, Result};
}

#[cfg(feature = "model")]
pub mod model;
