//! Deterministic concurrency model checking (loom/CHESS style).
//!
//! [`check`] (or [`try_check`]) runs a closed concurrent scenario —
//! a closure that spawns threads through [`crate::thread`] and
//! synchronizes through the facade types — repeatedly, exploring every
//! thread interleaving reachable under a preemption bound via
//! depth-first search over scheduling choices. Each facade operation
//! (mutex lock/unlock, condvar wait/notify, non-relaxed atomic access,
//! once initialization, [`RaceCell`] access) is a scheduling point.
//!
//! Detected violations:
//!
//! - **Data races**: vector-clock happens-before tracking over
//!   [`RaceCell`] accesses.
//! - **Deadlocks**: every live thread blocked; condvar entries in the
//!   report carry the lost-notify count.
//! - **Panics**: any assertion failure inside the scenario, under any
//!   explored schedule.
//!
//! Scenarios must be deterministic apart from scheduling: same
//! choices, same behavior (no wall-clock branching, no RNG). Relaxed
//! atomic operations are *not* scheduling points by default (they
//! establish no ordering; skipping them keeps state spaces tractable
//! the same way the preemption bound does) — turn them on per scenario
//! with [`ModelOptions::yield_on_relaxed`]. Values always behave
//! sequentially consistently (no weak-memory reordering is modeled);
//! the checker explores *interleavings*, not memory-model relaxations.

mod sched;

pub(crate) use sched::{next_obj_id, AtomicDir, Branch, Scheduler};

use std::cell::{RefCell, UnsafeCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::Arc;

/// Panic payload used internally to unwind scenario threads when an
/// execution aborts (violation found / limits hit). Never escapes
/// [`try_check`].
pub(crate) struct ModelAbort;

/// Exploration limits and knobs for one scenario.
#[derive(Clone, Debug)]
pub struct ModelOptions {
    /// Maximum *preemptive* context switches per execution (switches at
    /// a point where the running thread could have continued). Forced
    /// switches — blocking, exit, `sleep`/`yield_now` — are free.
    /// CHESS-style result: most concurrency bugs surface with 2.
    pub preemption_bound: usize,
    /// Hard cap on explored executions; exceeding it is a violation
    /// (the scenario is too big to be exhaustive — shrink it).
    pub max_executions: usize,
    /// Hard cap on scheduling steps within one execution (livelock
    /// guard).
    pub max_steps: usize,
    /// Make `Ordering::Relaxed` atomic operations scheduling points
    /// too. Off by default: relaxed ops carry no ordering, and
    /// skipping them keeps the schedule tree tractable.
    pub yield_on_relaxed: bool,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            preemption_bound: 2,
            max_executions: 100_000,
            max_steps: 20_000,
            yield_on_relaxed: false,
        }
    }
}

impl ModelOptions {
    /// Defaults: preemption bound 2, 100k executions, 20k steps,
    /// relaxed ops not scheduled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the preemption bound.
    pub fn preemptions(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Sets the execution cap.
    pub fn executions(mut self, cap: usize) -> Self {
        self.max_executions = cap;
        self
    }

    /// Sets the per-execution step cap.
    pub fn steps(mut self, cap: usize) -> Self {
        self.max_steps = cap;
        self
    }

    /// Schedule at relaxed atomic operations too.
    pub fn relaxed_yields(mut self, on: bool) -> Self {
        self.yield_on_relaxed = on;
        self
    }
}

/// What kind of property the checker saw violated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Unsynchronized conflicting accesses to a [`RaceCell`].
    DataRace,
    /// Every live thread blocked (mutex cycle, lost notify, …).
    Deadlock,
    /// The scenario panicked under some schedule (failed assertion,
    /// `unwrap`, explicit panic).
    Panic,
    /// One execution exceeded [`ModelOptions::max_steps`].
    StepLimit,
    /// Exploration exceeded [`ModelOptions::max_executions`] before
    /// exhausting the schedule tree.
    ExecutionLimit,
}

/// A property violation found under some explored schedule.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The violated property.
    pub kind: ViolationKind,
    /// Human-readable description (thread ids, blocked-on objects,
    /// lost-notify counts, panic message).
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:?}] {}", self.kind, self.message)
    }
}

/// The result of exploring one scenario.
#[derive(Clone, Debug)]
pub struct Report {
    /// Schedules (executions) explored. On success this is the size of
    /// the bounded interleaving space — scenarios worth checking
    /// report more than one.
    pub executions: usize,
    /// The first violation found, if any (exploration stops at the
    /// first).
    pub violation: Option<Violation>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler + model-thread-id of the calling thread, when it is
/// running inside a model execution.
pub(crate) fn current() -> Option<(Arc<Scheduler>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(v: Option<(Arc<Scheduler>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// Renders a panic payload for violation reports.
pub(crate) fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Explores `scenario` under `opts` and panics (with the violation,
/// and the schedule count) if any explored schedule breaks a property.
/// Returns the exploration [`Report`] on success.
pub fn check<F: Fn()>(opts: ModelOptions, scenario: F) -> Report {
    let report = try_check(opts, scenario);
    if let Some(v) = &report.violation {
        panic!(
            "model checking failed after {} schedule(s): {v}",
            report.executions
        );
    }
    report
}

/// As [`check`], but returns the violation in the [`Report`] instead
/// of panicking — for fixtures that *expect* one.
pub fn try_check<F: Fn()>(opts: ModelOptions, scenario: F) -> Report {
    assert!(
        current().is_none(),
        "model executions cannot be nested: try_check called from inside a scenario"
    );
    let mut path: Vec<Branch> = Vec::new();
    let mut executions = 0usize;
    loop {
        if executions >= opts.max_executions {
            return Report {
                executions,
                violation: Some(Violation {
                    kind: ViolationKind::ExecutionLimit,
                    message: format!(
                        "schedule tree not exhausted after {executions} executions \
                         (shrink the scenario or raise max_executions)"
                    ),
                }),
            };
        }
        executions += 1;
        let (new_path, violation) = run_one(&opts, path, &scenario);
        if violation.is_some() {
            return Report {
                executions,
                violation,
            };
        }
        path = new_path;
        if !advance(&mut path) {
            return Report {
                executions,
                violation: None,
            };
        }
    }
}

/// One execution: replay `path`, extend it with first-choice branches,
/// return the full recorded path and any violation.
fn run_one<F: Fn()>(
    opts: &ModelOptions,
    path: Vec<Branch>,
    scenario: &F,
) -> (Vec<Branch>, Option<Violation>) {
    let sched = Arc::new(Scheduler::new(opts.clone(), path));
    set_current(Some((Arc::clone(&sched), 0)));
    let outcome = catch_unwind(AssertUnwindSafe(scenario));
    if let Err(payload) = outcome {
        if !payload.is::<ModelAbort>() {
            sched.report_panic(0, payload_message(&*payload));
        }
    }
    sched.finish_root();
    set_current(None);
    sched.take_result()
}

/// DFS backtracking: advance the deepest branch with an unexplored
/// sibling; `false` when the tree is exhausted.
fn advance(path: &mut Vec<Branch>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.idx + 1 < last.options.len() {
            last.idx += 1;
            return true;
        }
        path.pop();
    }
    false
}

/// A shared memory location the model checker race-checks.
///
/// Inside a model execution, every access is a scheduling point and is
/// checked for a happens-before edge from all conflicting accesses
/// (FastTrack-style: last-write epoch + read frontier); an
/// unsynchronized conflict is reported as a [`ViolationKind::DataRace`].
///
/// This is a *scenario-building* type (the moral equivalent of loom's
/// `UnsafeCell`): production code keeps its data inside facade
/// `Mutex`/`RwLock`/atomics, which are race-free by construction —
/// `RaceCell` exists so model tests can (a) represent plain shared
/// state guarded *by protocol* rather than by a lock, and (b) prove
/// the checker is not vacuous with intentionally racy fixtures.
/// Outside a model execution accesses are unchecked; do not use it for
/// real cross-thread data.
#[derive(Debug)]
pub struct RaceCell<T> {
    id: StdAtomicU64,
    value: UnsafeCell<T>,
}

// SAFETY: within a model execution only one thread runs at a time and
// every access is serialized through the scheduler, so the underlying
// accesses never physically race; the checker flags *logical* races.
// Outside a model the caller must not share it across threads (see the
// type docs) — the bound still requires T: Send.
unsafe impl<T: Send> Send for RaceCell<T> {}
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T> RaceCell<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RaceCell {
            id: StdAtomicU64::new(0),
            value: UnsafeCell::new(value),
        }
    }

    fn obj_id(&self) -> u64 {
        crate::facade::lazy_id(&self.id)
    }

    /// Reads through a shared reference (race-checked in a model).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        if let Some((sched, tid)) = current() {
            sched.cell_access(self.obj_id(), tid, false);
        }
        // SAFETY: see the Send/Sync note — serialized by the scheduler
        // in a model; caller's responsibility outside one.
        f(unsafe { &*self.value.get() })
    }

    /// Writes through a shared reference (race-checked in a model).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        if let Some((sched, tid)) = current() {
            sched.cell_access(self.obj_id(), tid, true);
        }
        // SAFETY: as in `with`.
        f(unsafe { &mut *self.value.get() })
    }
}

impl<T: Copy> RaceCell<T> {
    /// Reads the value.
    pub fn get(&self) -> T {
        self.with(|v| *v)
    }

    /// Replaces the value.
    pub fn set(&self, value: T) {
        self.with_mut(|v| *v = value);
    }
}
