//! The cooperative exploration scheduler.
//!
//! One model execution runs the scenario's threads as real OS threads,
//! but only ever lets **one** of them proceed at a time: every facade
//! operation calls into the scheduler, which decides — replaying and
//! extending a DFS path over scheduling choices — which thread runs
//! next. Choice points are recorded as [`Branch`]es; the explorer
//! backtracks over them to enumerate every schedule reachable under
//! the preemption bound.
//!
//! The scheduler also owns the per-execution object registry (mutexes,
//! rwlocks, condvars, atomics, once-cells, race cells) and the
//! per-thread vector clocks used for happens-before reasoning.

use super::{ModelAbort, ModelOptions, Violation, ViolationKind};
use std::collections::HashMap;
use std::panic::panic_any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Fresh object identities. Facade objects lazily claim an id on first
/// model use and keep it for their lifetime, so statics keep a stable
/// identity across executions while the per-execution object state is
/// rebuilt from scratch each time.
static NEXT_OBJ: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_obj_id() -> u64 {
    NEXT_OBJ.fetch_add(1, Ordering::Relaxed)
}

/// A vector clock: `clock[t]` is the last event of thread `t` that
/// happens-before the clock's owner.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    pub(crate) fn get(&self, i: usize) -> u32 {
        self.0.get(i).copied().unwrap_or(0)
    }

    fn grow(&mut self, i: usize) {
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
    }

    pub(crate) fn set(&mut self, i: usize, v: u32) {
        self.grow(i);
        self.0[i] = v;
    }

    pub(crate) fn tick(&mut self, i: usize) {
        self.grow(i);
        self.0[i] += 1;
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        self.grow(other.0.len().saturating_sub(1));
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Pointwise `self <= other`: everything recorded here
    /// happens-before (or is) the other clock's frontier.
    pub(crate) fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }
}

/// One recorded scheduling choice: which of `options` (runnable thread
/// ids, deterministic order) was taken. The explorer increments `idx`
/// to visit siblings.
#[derive(Clone, Debug)]
pub(crate) struct Branch {
    pub(crate) options: Vec<usize>,
    pub(crate) idx: usize,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Run {
    Ready,
    Blocked(BlockedOn),
    Finished,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BlockedOn {
    Mutex(u64),
    RwRead(u64),
    RwWrite(u64),
    Condvar(u64),
    Join(usize),
    Once(u64),
}

impl BlockedOn {
    fn describe(&self, st: &State) -> String {
        match self {
            BlockedOn::Mutex(id) => format!("Mutex#{id}"),
            BlockedOn::RwRead(id) => format!("RwLock#{id} (read)"),
            BlockedOn::RwWrite(id) => format!("RwLock#{id} (write)"),
            BlockedOn::Condvar(id) => {
                let lost = st.objects.get(id).map_or(0, |o| match &o.kind {
                    ObjKind::Condvar { lost_notifies, .. } => *lost_notifies,
                    _ => 0,
                });
                if lost > 0 {
                    format!("Condvar#{id} ({lost} notifies found no waiter — lost notify?)")
                } else {
                    format!("Condvar#{id}")
                }
            }
            BlockedOn::Join(t) => format!("join of thread {t}"),
            BlockedOn::Once(id) => format!("Once#{id}"),
        }
    }
}

struct ThreadState {
    run: Run,
    clock: VClock,
}

enum ObjKind {
    Mutex {
        owner: Option<usize>,
    },
    RwLock {
        writer: Option<usize>,
        readers: Vec<usize>,
    },
    Condvar {
        waiters: Vec<usize>,
        lost_notifies: u32,
    },
    Atomic,
    Once {
        state: OnceState,
    },
    Cell {
        /// Last write epoch: (writer tid, writer's own clock component).
        write: Option<(usize, u32)>,
        /// Per-thread read frontier since the last write.
        reads: VClock,
    },
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum OnceState {
    Uninit,
    Running(usize),
    Done,
}

struct Object {
    kind: ObjKind,
    /// Release clock: joined into acquiring threads.
    clock: VClock,
}

/// Direction of an atomic operation, for clock transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AtomicDir {
    Load,
    Store,
    Rmw,
}

struct State {
    opts: ModelOptions,
    threads: Vec<ThreadState>,
    current: usize,
    /// Replayed prefix + this execution's extensions.
    path: Vec<Branch>,
    /// Next branch index to consume/extend.
    depth: usize,
    preemptions: usize,
    steps: usize,
    objects: HashMap<u64, Object>,
    violation: Option<Violation>,
    aborting: bool,
}

impl State {
    fn object(&mut self, id: u64, mk: impl FnOnce() -> ObjKind) -> &mut Object {
        self.objects.entry(id).or_insert_with(|| Object {
            kind: mk(),
            clock: VClock::default(),
        })
    }

    fn ready_others(&self, me: usize) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(t, s)| *t != me && s.run == Run::Ready)
            .map(|(t, _)| t)
            .collect()
    }

    fn ready_all(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, s)| s.run == Run::Ready)
            .map(|(t, _)| t)
            .collect()
    }

    /// Picks among `options` per the DFS path (recording a branch when
    /// there is a real choice).
    fn choose(&mut self, options: Vec<usize>) -> usize {
        if options.len() == 1 {
            return options[0];
        }
        let d = self.depth;
        self.depth += 1;
        if d < self.path.len() {
            debug_assert_eq!(
                self.path[d].options, options,
                "model replay diverged: the scenario is non-deterministic"
            );
            options[self.path[d].idx]
        } else {
            let chosen = options[0];
            self.path.push(Branch { options, idx: 0 });
            chosen
        }
    }

    fn abort(&mut self, v: Violation) {
        if self.violation.is_none() {
            self.violation = Some(v);
        }
        self.aborting = true;
    }

    fn deadlock(&mut self) {
        let mut lines = Vec::new();
        for (t, s) in self.threads.iter().enumerate() {
            if let Run::Blocked(on) = &s.run {
                lines.push(format!("thread {t} blocked on {}", on.describe(self)));
            }
        }
        let message = format!("deadlock: {}", lines.join("; "));
        self.abort(Violation {
            kind: ViolationKind::Deadlock,
            message,
        });
    }

    /// Wakes every thread blocked on `pred`'s condition.
    fn wake(&mut self, pred: impl Fn(&BlockedOn) -> bool) {
        for s in self.threads.iter_mut() {
            if let Run::Blocked(on) = &s.run {
                if pred(on) {
                    s.run = Run::Ready;
                }
            }
        }
    }

    /// Model-level mutex release (no scheduling): publishes the
    /// releaser's clock and readies the blocked waiters.
    fn release_mutex(&mut self, id: u64, tid: usize) {
        self.threads[tid].clock.tick(tid);
        let clock = self.threads[tid].clock.clone();
        let obj = self.object(id, || ObjKind::Mutex { owner: None });
        if let ObjKind::Mutex { owner } = &mut obj.kind {
            *owner = None;
        }
        obj.clock.join(&clock);
        self.wake(|on| *on == BlockedOn::Mutex(id));
    }
}

/// The per-execution scheduler. Facade operations reach it through the
/// thread-local set up by [`super::try_check`].
pub(crate) struct Scheduler {
    state: StdMutex<State>,
    cv: StdCondvar,
}

impl Scheduler {
    pub(crate) fn new(opts: ModelOptions, replay: Vec<Branch>) -> Scheduler {
        Scheduler {
            state: StdMutex::new(State {
                opts,
                threads: vec![ThreadState {
                    run: Run::Ready,
                    clock: VClock::default(),
                }],
                current: 0,
                path: replay,
                depth: 0,
                preemptions: 0,
                steps: 0,
                objects: HashMap::new(),
                violation: None,
                aborting: false,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Unwinds out of the scenario when the execution is aborting.
    /// During an unwind already in progress (guard drops) it returns
    /// quietly instead — a double panic would abort the process.
    fn abort_panic(&self) -> ! {
        if std::thread::panicking() {
            // Unreachable in practice: callers check `panicking` first.
            std::process::abort();
        }
        panic_any(ModelAbort);
    }

    fn maybe_abort(&self, st: StdMutexGuard<'_, State>) -> bool {
        let aborting = st.aborting;
        drop(st);
        if aborting && !std::thread::panicking() {
            self.abort_panic();
        }
        aborting
    }

    /// The scheduling point before every visible operation of `tid`:
    /// gives other runnable threads the chance to run first (costing
    /// one preemption), per the DFS path.
    pub(crate) fn pre_op(&self, tid: usize) {
        let mut st = self.lock();
        if st.aborting {
            self.maybe_abort(st);
            return;
        }
        debug_assert_eq!(st.current, tid, "only the scheduled thread runs");
        st.steps += 1;
        if st.steps > st.opts.max_steps {
            let cap = st.opts.max_steps;
            st.abort(Violation {
                kind: ViolationKind::StepLimit,
                message: format!(
                    "execution exceeded {cap} scheduler steps (livelock, or raise max_steps)"
                ),
            });
            self.cv.notify_all();
            self.maybe_abort(st);
            return;
        }
        let others = st.ready_others(tid);
        if others.is_empty() {
            return;
        }
        if st.preemptions >= st.opts.preemption_bound {
            return;
        }
        let mut options = vec![tid];
        options.extend(others);
        let chosen = st.choose(options);
        if chosen != tid {
            st.preemptions += 1;
            st.current = chosen;
            self.cv.notify_all();
            st = self.wait_for_turn(st, tid);
            self.maybe_abort(st);
        }
    }

    /// A point where the current thread *must* let others run if any
    /// are runnable (`thread::sleep` / `thread::yield_now`): modeled as
    /// a forced, preemption-free switch.
    pub(crate) fn forced_yield(&self, tid: usize) {
        let mut st = self.lock();
        if st.aborting {
            self.maybe_abort(st);
            return;
        }
        st.steps += 1;
        let others = st.ready_others(tid);
        if others.is_empty() {
            return;
        }
        let chosen = st.choose(others);
        st.current = chosen;
        self.cv.notify_all();
        st = self.wait_for_turn(st, tid);
        self.maybe_abort(st);
    }

    fn wait_for_turn<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, State>,
        tid: usize,
    ) -> StdMutexGuard<'a, State> {
        while !(st.aborting || st.current == tid && st.threads[tid].run == Run::Ready) {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        st
    }

    /// Blocks `tid` on `on`, hands the schedule to another runnable
    /// thread (or reports a deadlock), and returns once `tid` is made
    /// ready and scheduled again.
    fn block<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, State>,
        tid: usize,
        on: BlockedOn,
    ) -> StdMutexGuard<'a, State> {
        st.threads[tid].run = Run::Blocked(on);
        st.steps += 1;
        let ready = st.ready_all();
        if ready.is_empty() {
            if st.threads.iter().any(|t| t.run != Run::Finished) {
                st.deadlock();
            }
            self.cv.notify_all();
        } else {
            let chosen = st.choose(ready);
            st.current = chosen;
            self.cv.notify_all();
        }
        self.wait_for_turn(st, tid)
    }

    // ---- threads ----------------------------------------------------

    /// Registers a child thread of `parent`; the child starts Ready and
    /// inherits the parent's causal past.
    pub(crate) fn spawn_thread(&self, parent: usize) -> usize {
        self.pre_op(parent);
        let mut st = self.lock();
        let tid = st.threads.len();
        st.threads[parent].clock.tick(parent);
        let mut clock = st.threads[parent].clock.clone();
        clock.tick(tid);
        st.threads.push(ThreadState {
            run: Run::Ready,
            clock,
        });
        tid
    }

    /// The child's first wait for the schedule. `false` means the
    /// execution aborted before the child ever ran.
    pub(crate) fn wait_first_turn(&self, tid: usize) -> bool {
        let st = self.lock();
        let st = self.wait_for_turn(st, tid);
        !st.aborting
    }

    /// Marks `tid` finished, wakes joiners, and hands off the schedule.
    pub(crate) fn thread_finished(&self, tid: usize) {
        let mut st = self.lock();
        st.threads[tid].run = Run::Finished;
        st.threads[tid].clock.tick(tid);
        st.wake(|on| *on == BlockedOn::Join(tid));
        if !st.aborting && st.current == tid {
            let ready = st.ready_all();
            if !ready.is_empty() {
                let chosen = st.choose(ready);
                st.current = chosen;
            } else if st.threads.iter().any(|t| t.run != Run::Finished) {
                st.deadlock();
            }
        }
        self.cv.notify_all();
    }

    /// Blocks `me` until `target` finishes, then acquires its final
    /// clock (join synchronizes-with thread exit).
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        self.pre_op(me);
        let mut st = self.lock();
        loop {
            if st.aborting {
                self.maybe_abort(st);
                return;
            }
            if st.threads[target].run == Run::Finished {
                let clock = st.threads[target].clock.clone();
                st.threads[me].clock.join(&clock);
                return;
            }
            st = self.block(st, me, BlockedOn::Join(target));
        }
    }

    /// Root-thread epilogue: finish tid 0, then wait for every thread
    /// of the execution to retire (scheduling continues among them).
    pub(crate) fn finish_root(&self) {
        self.thread_finished(0);
        let mut st = self.lock();
        while st.threads.iter().any(|t| t.run != Run::Finished) {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Records a panic that escaped the scenario on thread `tid` and
    /// aborts the execution.
    pub(crate) fn report_panic(&self, tid: usize, message: String) {
        let mut st = self.lock();
        st.abort(Violation {
            kind: ViolationKind::Panic,
            message: format!("thread {tid} panicked: {message}"),
        });
        self.cv.notify_all();
    }

    /// The execution's outcome: the explored choice path and any
    /// violation. Called after [`finish_root`](Self::finish_root).
    pub(crate) fn take_result(&self) -> (Vec<Branch>, Option<Violation>) {
        let st = self.lock();
        (st.path.clone(), st.violation.clone())
    }

    // ---- mutex ------------------------------------------------------

    pub(crate) fn mutex_lock(&self, id: u64, tid: usize) {
        self.pre_op(tid);
        let mut st = self.lock();
        loop {
            if st.aborting {
                self.maybe_abort(st);
                return;
            }
            let obj = st.object(id, || ObjKind::Mutex { owner: None });
            let held = match &mut obj.kind {
                ObjKind::Mutex { owner } => match owner {
                    None => {
                        *owner = Some(tid);
                        false
                    }
                    Some(_) => true,
                },
                _ => unreachable!("object {id} is not a mutex"),
            };
            if !held {
                let clock = st.objects[&id].clock.clone();
                st.threads[tid].clock.join(&clock);
                return;
            }
            st = self.block(st, tid, BlockedOn::Mutex(id));
        }
    }

    pub(crate) fn mutex_unlock(&self, id: u64, tid: usize) {
        self.pre_op(tid);
        let mut st = self.lock();
        st.release_mutex(id, tid);
        self.cv.notify_all();
    }

    // ---- rwlock -----------------------------------------------------

    pub(crate) fn rw_lock(&self, id: u64, tid: usize, write: bool) {
        self.pre_op(tid);
        let mut st = self.lock();
        loop {
            if st.aborting {
                self.maybe_abort(st);
                return;
            }
            let obj = st.object(id, || ObjKind::RwLock {
                writer: None,
                readers: Vec::new(),
            });
            let blocked = match &mut obj.kind {
                ObjKind::RwLock { writer, readers } => {
                    if write {
                        if writer.is_none() && readers.is_empty() {
                            *writer = Some(tid);
                            false
                        } else {
                            true
                        }
                    } else if writer.is_none() {
                        readers.push(tid);
                        false
                    } else {
                        true
                    }
                }
                _ => unreachable!("object {id} is not a rwlock"),
            };
            if !blocked {
                let clock = st.objects[&id].clock.clone();
                st.threads[tid].clock.join(&clock);
                return;
            }
            let on = if write {
                BlockedOn::RwWrite(id)
            } else {
                BlockedOn::RwRead(id)
            };
            st = self.block(st, tid, on);
        }
    }

    pub(crate) fn rw_unlock(&self, id: u64, tid: usize, write: bool) {
        self.pre_op(tid);
        let mut st = self.lock();
        st.threads[tid].clock.tick(tid);
        let clock = st.threads[tid].clock.clone();
        let obj = st.object(id, || ObjKind::RwLock {
            writer: None,
            readers: Vec::new(),
        });
        if let ObjKind::RwLock { writer, readers } = &mut obj.kind {
            if write {
                *writer = None;
            } else {
                readers.retain(|r| *r != tid);
            }
        }
        // Readers publish too: a writer acquiring after them must see
        // everything that happened-before their unlock.
        obj.clock.join(&clock);
        st.wake(|on| *on == BlockedOn::RwRead(id) || *on == BlockedOn::RwWrite(id));
        self.cv.notify_all();
    }

    // ---- condvar ----------------------------------------------------

    /// The atomic core of `Condvar::wait`: enqueue as a waiter, release
    /// the mutex (model side — the caller already dropped the std
    /// guard), and block until a notify readies this thread. The caller
    /// re-acquires the mutex afterwards.
    pub(crate) fn condvar_wait(&self, cv_id: u64, mutex_id: u64, tid: usize) {
        let mut st = self.lock();
        if st.aborting {
            self.maybe_abort(st);
            return;
        }
        let obj = st.object(cv_id, || ObjKind::Condvar {
            waiters: Vec::new(),
            lost_notifies: 0,
        });
        if let ObjKind::Condvar { waiters, .. } = &mut obj.kind {
            waiters.push(tid);
        }
        st.release_mutex(mutex_id, tid);
        let st = self.block(st, tid, BlockedOn::Condvar(cv_id));
        drop(st);
    }

    pub(crate) fn condvar_notify(&self, cv_id: u64, tid: usize, all: bool) {
        self.pre_op(tid);
        let mut st = self.lock();
        if st.aborting {
            // Free-running teardown: ready every waiter so they can
            // unwind.
            st.wake(|on| *on == BlockedOn::Condvar(cv_id));
            self.cv.notify_all();
            self.maybe_abort(st);
            return;
        }
        st.threads[tid].clock.tick(tid);
        let clock = st.threads[tid].clock.clone();
        let obj = st.object(cv_id, || ObjKind::Condvar {
            waiters: Vec::new(),
            lost_notifies: 0,
        });
        obj.clock.join(&clock);
        let woken: Vec<usize> = match &mut obj.kind {
            ObjKind::Condvar {
                waiters,
                lost_notifies,
            } => {
                if waiters.is_empty() {
                    *lost_notifies += 1;
                    Vec::new()
                } else if all {
                    std::mem::take(waiters)
                } else {
                    vec![waiters.remove(0)]
                }
            }
            _ => unreachable!("object {cv_id} is not a condvar"),
        };
        let cv_clock = st.objects[&cv_id].clock.clone();
        for w in woken {
            st.threads[w].run = Run::Ready;
            // Wakeup synchronizes-with the notify.
            st.threads[w].clock.join(&cv_clock);
        }
        self.cv.notify_all();
    }

    // ---- atomics ----------------------------------------------------

    pub(crate) fn atomic_op(&self, id: u64, tid: usize, ord: Ordering, dir: AtomicDir) {
        {
            let st = self.lock();
            if ord == Ordering::Relaxed && !st.opts.yield_on_relaxed {
                return;
            }
        }
        self.pre_op(tid);
        let mut st = self.lock();
        if st.aborting {
            self.maybe_abort(st);
            return;
        }
        let acquire = matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
            && dir != AtomicDir::Store;
        let release = matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
            && dir != AtomicDir::Load;
        if acquire {
            let clock = st.object(id, || ObjKind::Atomic).clock.clone();
            st.threads[tid].clock.join(&clock);
        }
        if release {
            st.threads[tid].clock.tick(tid);
            let clock = st.threads[tid].clock.clone();
            st.object(id, || ObjKind::Atomic).clock.join(&clock);
        }
    }

    // ---- once / once-lock -------------------------------------------

    /// `true`: initialization already complete (clock acquired).
    /// `false`: the caller now owns the (single) initialization and
    /// must call [`once_complete`](Self::once_complete).
    pub(crate) fn once_acquire(&self, id: u64, tid: usize) -> bool {
        self.pre_op(tid);
        let mut st = self.lock();
        loop {
            if st.aborting {
                self.maybe_abort(st);
                return true;
            }
            let obj = st.object(id, || ObjKind::Once {
                state: OnceState::Uninit,
            });
            let decided = match &mut obj.kind {
                ObjKind::Once { state } => match *state {
                    OnceState::Done => Some(true),
                    OnceState::Uninit => {
                        *state = OnceState::Running(tid);
                        Some(false)
                    }
                    OnceState::Running(_) => None,
                },
                _ => unreachable!("object {id} is not a once"),
            };
            match decided {
                Some(true) => {
                    let clock = st.objects[&id].clock.clone();
                    st.threads[tid].clock.join(&clock);
                    return true;
                }
                Some(false) => return false,
                None => st = self.block(st, tid, BlockedOn::Once(id)),
            }
        }
    }

    pub(crate) fn once_complete(&self, id: u64, tid: usize) {
        let mut st = self.lock();
        st.threads[tid].clock.tick(tid);
        let clock = st.threads[tid].clock.clone();
        let obj = st.object(id, || ObjKind::Once {
            state: OnceState::Uninit,
        });
        if let ObjKind::Once { state } = &mut obj.kind {
            *state = OnceState::Done;
        }
        obj.clock.join(&clock);
        st.wake(|on| *on == BlockedOn::Once(id));
        self.cv.notify_all();
    }

    /// Non-blocking peek for `OnceLock::get`: `true` when initialized
    /// (clock acquired).
    pub(crate) fn once_peek(&self, id: u64, tid: usize) -> bool {
        self.pre_op(tid);
        let mut st = self.lock();
        if st.aborting {
            self.maybe_abort(st);
            return true;
        }
        let done = matches!(
            st.object(id, || ObjKind::Once {
                state: OnceState::Uninit
            })
            .kind,
            ObjKind::Once {
                state: OnceState::Done
            }
        );
        if done {
            let clock = st.objects[&id].clock.clone();
            st.threads[tid].clock.join(&clock);
        }
        done
    }

    // ---- race cells -------------------------------------------------

    pub(crate) fn cell_access(&self, id: u64, tid: usize, write: bool) {
        self.pre_op(tid);
        let mut st = self.lock();
        if st.aborting {
            self.maybe_abort(st);
            return;
        }
        let my = st.threads[tid].clock.clone();
        let obj = st.object(id, || ObjKind::Cell {
            write: None,
            reads: VClock::default(),
        });
        let race = match &mut obj.kind {
            ObjKind::Cell { write: w, reads } => {
                let write_races = w.is_some_and(|(wt, wc)| wt != tid && my.get(wt) < wc);
                let read_races = write && !reads.le(&my);
                if write_races || read_races {
                    true
                } else {
                    if write {
                        *reads = VClock::default();
                    } else {
                        reads.set(tid, my.get(tid));
                    }
                    false
                }
            }
            _ => unreachable!("object {id} is not a race cell"),
        };
        if race {
            let op = if write { "write" } else { "read" };
            st.abort(Violation {
                kind: ViolationKind::DataRace,
                message: format!(
                    "data race: unsynchronized {op} of RaceCell#{id} by thread {tid} \
                     (no happens-before edge from the conflicting access)"
                ),
            });
            self.cv.notify_all();
            self.maybe_abort(st);
            return;
        }
        if write {
            st.threads[tid].clock.tick(tid);
            let epoch = st.threads[tid].clock.get(tid);
            if let Some(Object {
                kind: ObjKind::Cell { write: w, .. },
                ..
            }) = st.objects.get_mut(&id)
            {
                *w = Some((tid, epoch));
            }
        }
    }
}
