//! Dual-mode synchronization types (model builds only).
//!
//! Each type pairs the real std primitive (which always holds the
//! data) with a lazily assigned model object id. Outside a model
//! execution the wrappers delegate straight to std; inside one, every
//! operation first consults the scheduler — acquiring/releasing at the
//! model level, transferring vector clocks, and yielding the schedule
//! — before performing the real operation (which, with only one model
//! thread running at a time, never contends).

use crate::model::{self, current, payload_message, AtomicDir, ModelAbort};
use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool as StdAtomicBool, AtomicU64 as StdAtomicU64, Ordering};
use std::sync::{
    Arc, Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard,
    Once as StdOnce, OnceLock as StdOnceLock, PoisonError, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// Returns the object's model id, assigning a fresh one on first use.
pub(crate) fn lazy_id(slot: &StdAtomicU64) -> u64 {
    let v = slot.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    let fresh = model::next_obj_id();
    match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => fresh,
        Err(existing) => existing,
    }
}

// ---------------------------------------------------------------- Mutex

/// Dual-mode [`std::sync::Mutex`].
pub struct Mutex<T> {
    id: StdAtomicU64,
    inner: StdMutex<T>,
}

/// Dual-mode [`std::sync::MutexGuard`].
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    model: bool,
}

impl<T> Mutex<T> {
    /// Creates the mutex (usable in `static`s).
    pub const fn new(t: T) -> Self {
        Mutex {
            id: StdAtomicU64::new(0),
            inner: StdMutex::new(t),
        }
    }

    fn obj_id(&self) -> u64 {
        lazy_id(&self.id)
    }

    /// Acquires the mutex; a scheduling (and possibly blocking) point
    /// inside a model execution.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let model = if let Some((sched, tid)) = current() {
            sched.mutex_lock(self.obj_id(), tid);
            true
        } else {
            false
        };
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
                model,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
                model,
            })),
        }
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner
            .get_mut()
            .map_err(|p| PoisonError::new(p.into_inner()))
    }

    /// Consumes the mutex.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner
            .into_inner()
            .map_err(|p| PoisonError::new(p.into_inner()))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock first: when the model schedules another
        // thread during the release op below, the data is already
        // unlocked for it.
        drop(self.inner.take());
        if self.model {
            if let Some((sched, tid)) = current() {
                sched.mutex_unlock(self.lock.obj_id(), tid);
            }
        }
    }
}

// -------------------------------------------------------------- Condvar

/// Dual-mode [`std::sync::Condvar`].
pub struct Condvar {
    id: StdAtomicU64,
    inner: StdCondvar,
}

impl Condvar {
    /// Creates the condvar (usable in `static`s).
    pub const fn new() -> Self {
        Condvar {
            id: StdAtomicU64::new(0),
            inner: StdCondvar::new(),
        }
    }

    fn obj_id(&self) -> u64 {
        lazy_id(&self.id)
    }

    /// Releases the guard's mutex, waits for a notification, and
    /// re-acquires. In a model the enqueue+release is atomic (no lost
    /// wakeups from the wait side) and spurious wakeups do not occur.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if let Some((sched, tid)) = current() {
            let mut guard = guard;
            let lock = guard.lock;
            sched.pre_op(tid);
            // Dismantle without the model release in Drop: the model
            // release happens atomically with the waiter enqueue.
            drop(guard.inner.take());
            guard.model = false;
            drop(guard);
            sched.condvar_wait(self.obj_id(), lock.obj_id(), tid);
            lock.lock()
        } else {
            let lock = guard.lock;
            let mut guard = guard;
            let std_guard = guard.inner.take().expect("guard holds the lock");
            guard.model = false;
            drop(guard);
            match self.inner.wait(std_guard) {
                Ok(g) => Ok(MutexGuard {
                    lock,
                    inner: Some(g),
                    model: false,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock,
                    inner: Some(p.into_inner()),
                    model: false,
                })),
            }
        }
    }

    /// Wakes one waiter (in a model: FIFO; a notify that finds no
    /// waiter is counted for lost-notify diagnostics).
    pub fn notify_one(&self) {
        if let Some((sched, tid)) = current() {
            sched.condvar_notify(self.obj_id(), tid, false);
        }
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if let Some((sched, tid)) = current() {
            sched.condvar_notify(self.obj_id(), tid, true);
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// --------------------------------------------------------------- RwLock

/// Dual-mode [`std::sync::RwLock`].
pub struct RwLock<T> {
    id: StdAtomicU64,
    inner: StdRwLock<T>,
}

/// Dual-mode [`std::sync::RwLockReadGuard`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockReadGuard<'a, T>>,
    model: bool,
}

/// Dual-mode [`std::sync::RwLockWriteGuard`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockWriteGuard<'a, T>>,
    model: bool,
}

impl<T> RwLock<T> {
    /// Creates the lock (usable in `static`s).
    pub const fn new(t: T) -> Self {
        RwLock {
            id: StdAtomicU64::new(0),
            inner: StdRwLock::new(t),
        }
    }

    fn obj_id(&self) -> u64 {
        lazy_id(&self.id)
    }

    /// Acquires shared read access.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let model = if let Some((sched, tid)) = current() {
            sched.rw_lock(self.obj_id(), tid, false);
            true
        } else {
            false
        };
        match self.inner.read() {
            Ok(g) => Ok(RwLockReadGuard {
                lock: self,
                inner: Some(g),
                model,
            }),
            Err(p) => Err(PoisonError::new(RwLockReadGuard {
                lock: self,
                inner: Some(p.into_inner()),
                model,
            })),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let model = if let Some((sched, tid)) = current() {
            sched.rw_lock(self.obj_id(), tid, true);
            true
        } else {
            false
        };
        match self.inner.write() {
            Ok(g) => Ok(RwLockWriteGuard {
                lock: self,
                inner: Some(g),
                model,
            }),
            Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                lock: self,
                inner: Some(p.into_inner()),
                model,
            })),
        }
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner
            .get_mut()
            .map_err(|p| PoisonError::new(p.into_inner()))
    }

    /// Consumes the lock.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner
            .into_inner()
            .map_err(|p| PoisonError::new(p.into_inner()))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("inner", &self.inner)
            .finish()
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if self.model {
            if let Some((sched, tid)) = current() {
                sched.rw_unlock(self.lock.obj_id(), tid, false);
            }
        }
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if self.model {
            if let Some((sched, tid)) = current() {
                sched.rw_unlock(self.lock.obj_id(), tid, true);
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ----------------------------------------------------------------- Once

/// Dual-mode [`std::sync::Once`].
pub struct Once {
    id: StdAtomicU64,
    inner: StdOnce,
}

impl Once {
    /// Creates the once (usable in `static`s).
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Self {
        Once {
            id: StdAtomicU64::new(0),
            inner: StdOnce::new(),
        }
    }

    /// Runs `f` exactly once across all callers; later callers observe
    /// its effects (release/acquire).
    pub fn call_once(&self, f: impl FnOnce()) {
        if let Some((sched, tid)) = current() {
            let id = lazy_id(&self.id);
            if sched.once_acquire(id, tid) {
                return;
            }
            f();
            // Keep the std state consistent for mixed / later
            // non-model use.
            self.inner.call_once(|| {});
            sched.once_complete(id, tid);
        } else {
            self.inner.call_once(f);
        }
    }

    /// Whether `call_once` has completed.
    pub fn is_completed(&self) -> bool {
        self.inner.is_completed()
    }
}

impl fmt::Debug for Once {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Once").finish_non_exhaustive()
    }
}

// ------------------------------------------------------------- OnceLock

/// Dual-mode [`std::sync::OnceLock`].
pub struct OnceLock<T> {
    id: StdAtomicU64,
    inner: StdOnceLock<T>,
}

impl<T> OnceLock<T> {
    /// Creates an empty cell (usable in `static`s).
    pub const fn new() -> Self {
        OnceLock {
            id: StdAtomicU64::new(0),
            inner: StdOnceLock::new(),
        }
    }

    /// The value, if initialized (non-blocking).
    pub fn get(&self) -> Option<&T> {
        if let Some((sched, tid)) = current() {
            if sched.once_peek(lazy_id(&self.id), tid) {
                self.inner.get()
            } else {
                None
            }
        } else {
            self.inner.get()
        }
    }

    /// Sets the value if unset; `Err(value)` when already initialized.
    pub fn set(&self, value: T) -> Result<(), T> {
        if let Some((sched, tid)) = current() {
            let id = lazy_id(&self.id);
            if sched.once_acquire(id, tid) {
                return Err(value);
            }
            let r = self.inner.set(value);
            sched.once_complete(id, tid);
            r
        } else {
            self.inner.set(value)
        }
    }

    /// The value, initializing it with `f` if unset. In a model,
    /// exactly one thread runs `f`; others block and then acquire.
    pub fn get_or_init(&self, f: impl FnOnce() -> T) -> &T {
        if let Some((sched, tid)) = current() {
            let id = lazy_id(&self.id);
            if sched.once_acquire(id, tid) {
                if let Some(v) = self.inner.get() {
                    return v;
                }
                // Aborting teardown: fall through free-running.
                return self.inner.get_or_init(f);
            }
            let _ = self.inner.set(f());
            sched.once_complete(id, tid);
            self.inner.get().expect("just initialized")
        } else {
            self.inner.get_or_init(f)
        }
    }
}

impl<T> Default for OnceLock<T> {
    fn default() -> Self {
        OnceLock::new()
    }
}

impl<T: Clone> Clone for OnceLock<T> {
    fn clone(&self) -> Self {
        OnceLock {
            // A clone is a distinct object with its own identity.
            id: StdAtomicU64::new(0),
            inner: self.inner.clone(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for OnceLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OnceLock")
            .field("inner", &self.inner)
            .finish()
    }
}

// -------------------------------------------------------------- atomics

/// Dual-mode atomic integer/bool types.
pub mod atomic {
    use super::*;

    macro_rules! model_atomic_int {
        ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
            $(#[$doc])*
            pub struct $name {
                id: StdAtomicU64,
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// Creates the atomic (usable in `static`s).
                pub const fn new(v: $ty) -> Self {
                    $name {
                        id: StdAtomicU64::new(0),
                        inner: std::sync::atomic::$std::new(v),
                    }
                }

                fn hook(&self, ord: Ordering, dir: AtomicDir) {
                    if let Some((sched, tid)) = current() {
                        sched.atomic_op(lazy_id(&self.id), tid, ord, dir);
                    }
                }

                /// Atomic load.
                pub fn load(&self, ord: Ordering) -> $ty {
                    self.hook(ord, AtomicDir::Load);
                    self.inner.load(ord)
                }

                /// Atomic store.
                pub fn store(&self, v: $ty, ord: Ordering) {
                    self.hook(ord, AtomicDir::Store);
                    self.inner.store(v, ord)
                }

                /// Atomic swap.
                pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                    self.hook(ord, AtomicDir::Rmw);
                    self.inner.swap(v, ord)
                }

                /// Atomic compare-exchange (hooked at the success
                /// ordering).
                pub fn compare_exchange(
                    &self,
                    cur: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.hook(success, AtomicDir::Rmw);
                    self.inner.compare_exchange(cur, new, success, failure)
                }

                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                    self.hook(ord, AtomicDir::Rmw);
                    self.inner.fetch_add(v, ord)
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                    self.hook(ord, AtomicDir::Rmw);
                    self.inner.fetch_sub(v, ord)
                }

                /// Atomic max, returning the previous value.
                pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                    self.hook(ord, AtomicDir::Rmw);
                    self.inner.fetch_max(v, ord)
                }

                /// Exclusive access without synchronization.
                pub fn get_mut(&mut self) -> &mut $ty {
                    self.inner.get_mut()
                }

                /// Consumes the atomic.
                pub fn into_inner(self) -> $ty {
                    self.inner.into_inner()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$ty>::default())
                }
            }

            impl fmt::Debug for $name {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    fmt::Debug::fmt(&self.inner, f)
                }
            }
        };
    }

    model_atomic_int!(
        /// Dual-mode [`std::sync::atomic::AtomicU32`].
        AtomicU32,
        AtomicU32,
        u32
    );
    model_atomic_int!(
        /// Dual-mode [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        AtomicU64,
        u64
    );
    model_atomic_int!(
        /// Dual-mode [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        AtomicUsize,
        usize
    );

    /// Dual-mode [`std::sync::atomic::AtomicBool`].
    pub struct AtomicBool {
        id: StdAtomicU64,
        inner: StdAtomicBool,
    }

    impl AtomicBool {
        /// Creates the atomic (usable in `static`s).
        pub const fn new(v: bool) -> Self {
            AtomicBool {
                id: StdAtomicU64::new(0),
                inner: StdAtomicBool::new(v),
            }
        }

        fn hook(&self, ord: Ordering, dir: AtomicDir) {
            if let Some((sched, tid)) = current() {
                sched.atomic_op(lazy_id(&self.id), tid, ord, dir);
            }
        }

        /// Atomic load.
        pub fn load(&self, ord: Ordering) -> bool {
            self.hook(ord, AtomicDir::Load);
            self.inner.load(ord)
        }

        /// Atomic store.
        pub fn store(&self, v: bool, ord: Ordering) {
            self.hook(ord, AtomicDir::Store);
            self.inner.store(v, ord)
        }

        /// Atomic swap.
        pub fn swap(&self, v: bool, ord: Ordering) -> bool {
            self.hook(ord, AtomicDir::Rmw);
            self.inner.swap(v, ord)
        }

        /// Atomic compare-exchange (hooked at the success ordering).
        pub fn compare_exchange(
            &self,
            cur: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            self.hook(success, AtomicDir::Rmw);
            self.inner.compare_exchange(cur, new, success, failure)
        }

        /// Exclusive access without synchronization.
        pub fn get_mut(&mut self) -> &mut bool {
            self.inner.get_mut()
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&self.inner, f)
        }
    }
}

// -------------------------------------------------------------- threads

/// Dual-mode thread entry points.
pub mod thread {
    use super::*;
    use crate::model::set_current;
    use std::sync::atomic::AtomicBool as FlagBool;
    use std::time::Duration;

    /// `std::thread::available_parallelism`, unchanged: model
    /// scenarios pass explicit thread counts.
    pub use std::thread::available_parallelism;

    /// Bookkeeping shared between a handle and (for scoped threads)
    /// its scope.
    struct Shared {
        /// `(scheduler, model tid)` when spawned inside a model.
        model: Option<(Arc<crate::model::Scheduler>, usize)>,
        /// The real OS join handle; taken by whoever joins first.
        real: StdMutex<Option<std::thread::JoinHandle<()>>>,
        /// The closure panicked (with a non-abort payload).
        panicked: FlagBool,
        /// An explicit `join` consumed the outcome.
        handled: FlagBool,
    }

    type Slot<T> = Arc<StdMutex<Option<std::thread::Result<T>>>>;

    fn join_shared(shared: &Shared) {
        if let Some((sched, tid)) = &shared.model {
            if let Some((_, me)) = current() {
                sched.join_thread(me, *tid);
            }
        }
        let real = shared.real.lock().unwrap_or_else(|p| p.into_inner()).take();
        if let Some(real) = real {
            let _ = real.join();
        }
    }

    /// Spawns the already-wrapped (panic-catching, slot-writing)
    /// closure as a model thread or a plain std thread.
    fn spawn_erased(wrapper: Box<dyn FnOnce() + Send + 'static>) -> Arc<Shared> {
        match current() {
            None => {
                let real = std::thread::spawn(wrapper);
                Arc::new(Shared {
                    model: None,
                    real: StdMutex::new(Some(real)),
                    panicked: FlagBool::new(false),
                    handled: FlagBool::new(false),
                })
            }
            Some((sched, me)) => {
                let tid = sched.spawn_thread(me);
                let sched2 = Arc::clone(&sched);
                let real = std::thread::spawn(move || {
                    set_current(Some((Arc::clone(&sched2), tid)));
                    if sched2.wait_first_turn(tid) {
                        wrapper();
                    }
                    sched2.thread_finished(tid);
                    set_current(None);
                });
                Arc::new(Shared {
                    model: Some((sched, tid)),
                    real: StdMutex::new(Some(real)),
                    panicked: FlagBool::new(false),
                    handled: FlagBool::new(false),
                })
            }
        }
    }

    /// Builds the standard wrapper: run `f`, store the outcome in
    /// `slot`, report non-abort panics to the model (when inside one)
    /// and flag them on `shared`.
    fn wrap<T: Send>(f: impl FnOnce() -> T + Send, slot: Slot<T>) -> impl FnOnce() + Send {
        move || {
            let outcome = catch_unwind(AssertUnwindSafe(f));
            let mut store: Option<std::thread::Result<T>> = None;
            let mut panicked = false;
            match outcome {
                Ok(v) => store = Some(Ok(v)),
                Err(p) => {
                    if !p.is::<ModelAbort>() {
                        if let Some((sched, tid)) = current() {
                            sched.report_panic(tid, payload_message(&*p));
                        }
                        panicked = true;
                        store = Some(Err(p));
                    }
                }
            }
            *slot.lock().unwrap_or_else(|p| p.into_inner()) = store;
            if panicked {
                if let Some(shared) = SHARED_OF_SELF.with(|s| s.borrow().clone()) {
                    shared.panicked.store(true, Ordering::Release);
                }
            }
        }
    }

    thread_local! {
        /// Set for the duration of a wrapped closure so the wrapper can
        /// flag panics on its own bookkeeping.
        static SHARED_OF_SELF: RefCell<Option<Arc<Shared>>> = const { RefCell::new(None) };
    }

    fn spawn_with_shared<T: Send + 'static>(
        f: impl FnOnce() -> T + Send + 'static,
        slot: Slot<T>,
    ) -> Arc<Shared> {
        let inner = wrap(f, slot);
        let cell: Arc<StdMutex<Option<Arc<Shared>>>> = Arc::new(StdMutex::new(None));
        let cell2 = Arc::clone(&cell);
        let outer = move || {
            let shared = cell2.lock().unwrap_or_else(|p| p.into_inner()).clone();
            SHARED_OF_SELF.with(|s| *s.borrow_mut() = shared);
            inner();
            SHARED_OF_SELF.with(|s| *s.borrow_mut() = None);
        };
        // SAFETY-free path for 'static closures: no transmute needed.
        let boxed: Box<dyn FnOnce() + Send + 'static> = Box::new(outer);
        let shared = spawn_erased(boxed);
        *cell.lock().unwrap_or_else(|p| p.into_inner()) = Some(Arc::clone(&shared));
        shared
    }

    /// Dual-mode [`std::thread::JoinHandle`].
    pub struct JoinHandle<T> {
        shared: Arc<Shared>,
        slot: Slot<T>,
    }

    impl<T> fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("JoinHandle").finish_non_exhaustive()
        }
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread (a blocking model operation inside a
        /// model execution) and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.shared.handled.store(true, Ordering::Release);
            join_shared(&self.shared);
            self.slot
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .take()
                .unwrap_or_else(|| Err(Box::new("model thread aborted")))
        }
    }

    /// Spawns a thread (a model thread inside a model execution).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let slot: Slot<T> = Arc::new(StdMutex::new(None));
        let shared = spawn_with_shared(f, Arc::clone(&slot));
        JoinHandle { shared, slot }
    }

    /// Dual-mode [`std::thread::sleep`]: inside a model, logical time
    /// — a forced, preemption-free yield to the other runnable
    /// threads.
    pub fn sleep(dur: Duration) {
        if let Some((sched, tid)) = current() {
            sched.forced_yield(tid);
        } else {
            std::thread::sleep(dur);
        }
    }

    /// Dual-mode [`std::thread::yield_now`].
    pub fn yield_now() {
        if let Some((sched, tid)) = current() {
            sched.forced_yield(tid);
        } else {
            std::thread::yield_now();
        }
    }

    /// Dual-mode [`std::thread::Scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        handles: RefCell<Vec<Arc<Shared>>>,
        _scope: PhantomData<&'scope mut &'scope ()>,
        _env: PhantomData<&'env mut &'env ()>,
    }

    impl fmt::Debug for Scope<'_, '_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Scope").finish_non_exhaustive()
        }
    }

    /// Dual-mode [`std::thread::ScopedJoinHandle`].
    pub struct ScopedJoinHandle<'scope, T> {
        shared: Arc<Shared>,
        slot: Slot<T>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<T> fmt::Debug for ScopedJoinHandle<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("ScopedJoinHandle").finish_non_exhaustive()
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the scoped thread and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.shared.handled.store(true, Ordering::Release);
            join_shared(&self.shared);
            self.slot
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .take()
                .unwrap_or_else(|| Err(Box::new("model thread aborted")))
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; joined (if not explicitly) when the
        /// scope ends.
        pub fn spawn<F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let slot: Slot<T> = Arc::new(StdMutex::new(None));
            let inner = wrap(f, Arc::clone(&slot));
            let cell: Arc<StdMutex<Option<Arc<Shared>>>> = Arc::new(StdMutex::new(None));
            let cell2 = Arc::clone(&cell);
            let outer = move || {
                let shared = cell2.lock().unwrap_or_else(|p| p.into_inner()).clone();
                SHARED_OF_SELF.with(|s| *s.borrow_mut() = shared);
                inner();
                SHARED_OF_SELF.with(|s| *s.borrow_mut() = None);
            };
            let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(outer);
            // SAFETY: the closure (and the result slot it captures) only
            // borrows data outliving 'scope, and `scope` joins every
            // spawned thread — on the normal path *and* on the panic
            // path — before 'scope ends, so the erased borrows never
            // outlive their referents. This is the same erasure the std
            // scoped-thread implementation performs internally.
            let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe {
                std::mem::transmute::<
                    Box<dyn FnOnce() + Send + 'scope>,
                    Box<dyn FnOnce() + Send + 'static>,
                >(boxed)
            };
            let shared = spawn_erased(boxed);
            *cell.lock().unwrap_or_else(|p| p.into_inner()) = Some(Arc::clone(&shared));
            self.handles.borrow_mut().push(Arc::clone(&shared));
            ScopedJoinHandle {
                shared,
                slot,
                _marker: PhantomData,
            }
        }
    }

    /// Dual-mode [`std::thread::scope`]: every spawned thread is
    /// joined before this returns, on the normal and the panic path.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        let sc = Scope {
            handles: RefCell::new(Vec::new()),
            _scope: PhantomData,
            _env: PhantomData,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| f(&sc)));
        let mut unhandled_panic = false;
        for shared in sc.handles.borrow_mut().drain(..) {
            join_shared(&shared);
            if shared.panicked.load(Ordering::Acquire) && !shared.handled.load(Ordering::Acquire) {
                unhandled_panic = true;
            }
        }
        match outcome {
            Ok(v) => {
                if unhandled_panic {
                    panic!("a scoped thread panicked");
                }
                v
            }
            Err(p) => resume_unwind(p),
        }
    }
}
