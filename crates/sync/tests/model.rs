//! Self-tests for the model checker: positive fixtures (correct
//! protocols pass, with more than one schedule explored) and negative
//! fixtures (seeded races, deadlocks, lost notifies, and reachable
//! panics ARE detected — the checker is not vacuous).
#![cfg(feature = "model")]

use spillopt_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use spillopt_sync::model::{check, try_check, ModelOptions, RaceCell, ViolationKind};
use spillopt_sync::thread;
use spillopt_sync::{Arc, Condvar, Mutex};

/// An intentionally racy fixture is detected: two threads increment a
/// `RaceCell` with no synchronization.
#[test]
fn detects_seeded_data_race() {
    let report = try_check(ModelOptions::new(), || {
        let cell = Arc::new(RaceCell::new(0u32));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            let v = c2.get();
            c2.set(v + 1);
        });
        let v = cell.get();
        cell.set(v + 1);
        let _ = t.join();
    });
    let v = report.violation.expect("the race must be found");
    assert_eq!(v.kind, ViolationKind::DataRace, "got: {v}");
}

/// The same counter behind a facade `Mutex` is race-free, and the
/// checker still explores more than one interleaving.
#[test]
fn mutex_counter_passes_with_multiple_schedules() {
    let report = check(ModelOptions::new(), || {
        let cell = Arc::new((Mutex::new(()), RaceCell::new(0u32)));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&cell);
                thread::spawn(move || {
                    let _g = c.0.lock().unwrap();
                    let v = c.1.get();
                    c.1.set(v + 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.1.get(), 2);
    });
    assert!(
        report.executions > 1,
        "expected >1 interleaving, got {}",
        report.executions
    );
}

/// Classic AB-BA lock-order inversion deadlocks under some schedule.
#[test]
fn detects_abba_deadlock() {
    let report = try_check(ModelOptions::new(), || {
        let locks = Arc::new((Mutex::new(0u32), Mutex::new(0u32)));
        let l2 = Arc::clone(&locks);
        let t = thread::spawn(move || {
            let _b = l2.1.lock().unwrap();
            let _a = l2.0.lock().unwrap();
        });
        {
            let _a = locks.0.lock().unwrap();
            let _b = locks.1.lock().unwrap();
        }
        let _ = t.join();
    });
    let v = report.violation.expect("the deadlock must be found");
    assert_eq!(v.kind, ViolationKind::Deadlock, "got: {v}");
}

/// A notify sent before the waiter blocks is lost; the report names the
/// lost-notify count on the condvar.
#[test]
fn detects_lost_notify() {
    let report = try_check(ModelOptions::new(), || {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            // Bug: signals an *event*, not a predicate change. If this
            // runs before the main thread blocks, the notify is lost.
            p2.1.notify_one();
        });
        {
            let guard = pair.0.lock().unwrap();
            // Bug: waits unconditionally instead of re-checking shared
            // state under the mutex.
            let _guard = pair.1.wait(guard).unwrap();
        }
        let _ = t.join();
    });
    let v = report.violation.expect("the lost notify must be found");
    assert_eq!(v.kind, ViolationKind::Deadlock, "got: {v}");
    assert!(
        v.message.contains("lost"),
        "deadlock report should mention the lost notify: {v}"
    );
}

/// The correct condvar protocol (state change under the mutex, wait in
/// a re-check loop) passes.
#[test]
fn condvar_protocol_passes() {
    let report = check(ModelOptions::new(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let mut flag = p2.0.lock().unwrap();
            *flag = true;
            p2.1.notify_one();
        });
        {
            let mut guard = pair.0.lock().unwrap();
            while !*guard {
                guard = pair.1.wait(guard).unwrap();
            }
        }
        t.join().unwrap();
    });
    assert!(report.executions > 1);
}

/// Release-store / acquire-load publication makes the data access
/// race-free.
#[test]
fn release_acquire_publication_passes() {
    check(ModelOptions::new(), || {
        let shared = Arc::new((AtomicBool::new(false), RaceCell::new(0u32)));
        let s2 = Arc::clone(&shared);
        let t = thread::spawn(move || {
            s2.1.set(42);
            s2.0.store(true, Ordering::Release);
        });
        if shared.0.load(Ordering::Acquire) {
            assert_eq!(shared.1.get(), 42);
        }
        let _ = t.join();
    });
}

/// The same fixture with `Relaxed` orderings (and relaxed ops made
/// scheduling points) is flagged: relaxed operations establish no
/// happens-before edge.
#[test]
fn relaxed_publication_is_a_race() {
    let report = try_check(ModelOptions::new().relaxed_yields(true), || {
        let shared = Arc::new((AtomicBool::new(false), RaceCell::new(0u32)));
        let s2 = Arc::clone(&shared);
        let t = thread::spawn(move || {
            s2.1.set(42);
            s2.0.store(true, Ordering::Relaxed);
        });
        if shared.0.load(Ordering::Relaxed) {
            let _ = shared.1.get();
        }
        let _ = t.join();
    });
    let v = report
        .violation
        .expect("the relaxed publication race must be found");
    assert_eq!(v.kind, ViolationKind::DataRace, "got: {v}");
}

/// An assertion that only fails under one interleaving is reached and
/// reported as a panic violation.
#[test]
fn detects_interleaving_dependent_panic() {
    let report = try_check(ModelOptions::new(), || {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.store(1, Ordering::SeqCst);
        });
        // Fails only when the spawned store wins the race.
        assert_eq!(n.load(Ordering::SeqCst), 0, "store beat the load");
        let _ = t.join();
    });
    let v = report.violation.expect("the racy assertion must trip");
    assert_eq!(v.kind, ViolationKind::Panic, "got: {v}");
    assert!(v.message.contains("store beat the load"), "got: {v}");
}

/// `thread::scope` works inside scenarios and joins implicitly.
#[test]
fn scoped_threads_model_checked() {
    let report = check(ModelOptions::new(), || {
        let counter = Mutex::new(0u32);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    *counter.lock().unwrap() += 1;
                });
            }
        });
        assert_eq!(*counter.lock().unwrap(), 2);
    });
    assert!(report.executions > 1);
}

/// `OnceLock::get_or_init` runs the initializer exactly once under
/// every schedule.
#[test]
fn once_lock_initializes_exactly_once() {
    check(ModelOptions::new(), || {
        let state = Arc::new((spillopt_sync::OnceLock::new(), AtomicUsize::new(0)));
        let s2 = Arc::clone(&state);
        let t = thread::spawn(move || {
            *s2.0.get_or_init(|| {
                s2.1.fetch_add(1, Ordering::SeqCst);
                7u32
            })
        });
        let v = *state.0.get_or_init(|| {
            state.1.fetch_add(1, Ordering::SeqCst);
            7u32
        });
        assert_eq!(v, 7);
        assert_eq!(t.join().unwrap(), 7);
        assert_eq!(state.1.load(Ordering::SeqCst), 1, "initializer ran twice");
    });
}

/// Exceeding the execution cap is reported, not silently truncated.
#[test]
fn execution_cap_is_a_violation() {
    let report = try_check(ModelOptions::new().executions(2), || {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    *m.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    let v = report.violation.expect("cap must be reported");
    assert_eq!(v.kind, ViolationKind::ExecutionLimit);
}

/// The facade still behaves as plain std outside `check` even with the
/// `model` feature on.
#[test]
fn facade_works_outside_model() {
    let m = Arc::new(Mutex::new(0u32));
    let m2 = Arc::clone(&m);
    let t = thread::spawn(move || {
        *m2.lock().unwrap() += 1;
    });
    t.join().unwrap();
    assert_eq!(*m.lock().unwrap(), 1);
}
