//! Edge profiles: dynamic execution counts over a CFG snapshot.

use spillopt_ir::{BlockId, Cfg, EdgeId};
use std::fmt;

/// Dynamic execution counts for every edge of a [`Cfg`] snapshot, plus the
/// function's entry count.
///
/// Block execution counts are derived: a block's count is the sum of its
/// incoming edge counts (the entry block adds the entry count).
///
/// All the paper's cost models price save/restore locations with these
/// counts.
#[derive(Clone, PartialEq, Eq)]
pub struct EdgeProfile {
    edge_counts: Vec<u64>,
    entry_count: u64,
    block_counts: Vec<u64>,
}

impl EdgeProfile {
    /// Creates a profile from raw per-edge counts (indexed by [`EdgeId`])
    /// and the function entry count.
    ///
    /// # Panics
    ///
    /// Panics if `edge_counts.len()` differs from the CFG's edge count.
    pub fn new(cfg: &Cfg, edge_counts: Vec<u64>, entry_count: u64) -> Self {
        assert_eq!(
            edge_counts.len(),
            cfg.num_edges(),
            "edge count vector length mismatch"
        );
        let mut block_counts = vec![0u64; cfg.num_blocks()];
        block_counts[cfg.entry().index()] = entry_count;
        for (id, e) in cfg.edges() {
            block_counts[e.to.index()] += edge_counts[id.index()];
        }
        EdgeProfile {
            edge_counts,
            entry_count,
            block_counts,
        }
    }

    /// A profile with every count zero (useful as a starting accumulator).
    pub fn zeroed(cfg: &Cfg) -> Self {
        EdgeProfile::new(cfg, vec![0; cfg.num_edges()], 0)
    }

    /// The number of times the procedure was entered.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// The execution count of an edge.
    pub fn edge_count(&self, e: EdgeId) -> u64 {
        self.edge_counts[e.index()]
    }

    /// All per-edge counts, indexed by [`EdgeId`] (the driver's session
    /// arena keys cached analyses on the exact profile contents).
    pub fn edge_counts(&self) -> &[u64] {
        &self.edge_counts
    }

    /// The execution count of a block (sum of incoming edges; the entry
    /// block includes the entry count).
    pub fn block_count(&self, b: BlockId) -> u64 {
        self.block_counts[b.index()]
    }

    /// Adds another profile over the same CFG (used to accumulate multiple
    /// runs). Saturating.
    ///
    /// # Panics
    ///
    /// Panics if the profiles have different shapes.
    pub fn accumulate(&mut self, other: &EdgeProfile) {
        assert_eq!(self.edge_counts.len(), other.edge_counts.len());
        for (a, b) in self.edge_counts.iter_mut().zip(&other.edge_counts) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.block_counts.iter_mut().zip(&other.block_counts) {
            *a = a.saturating_add(*b);
        }
        self.entry_count = self.entry_count.saturating_add(other.entry_count);
    }

    /// Multiplies every count by `k` (used to weight a per-invocation
    /// profile by an invocation count). Saturating.
    pub fn scale(&mut self, k: u64) {
        for c in &mut self.edge_counts {
            *c = c.saturating_mul(k);
        }
        for c in &mut self.block_counts {
            *c = c.saturating_mul(k);
        }
        self.entry_count = self.entry_count.saturating_mul(k);
    }

    /// Checks Kirchhoff flow conservation: for every block, flow in
    /// (incoming edges, plus the entry count for the entry block) equals
    /// flow out (outgoing edges, plus returns for exit blocks). Returns the
    /// offending blocks.
    pub fn flow_violations(&self, cfg: &Cfg) -> Vec<BlockId> {
        let mut bad = Vec::new();
        for bi in 0..cfg.num_blocks() {
            let b = BlockId::from_index(bi);
            let inflow = self.block_count(b);
            let out: u64 = cfg.succ_edges(b).iter().map(|&e| self.edge_count(e)).sum();
            let is_exit = cfg.exit_blocks().contains(&b);
            // Exit blocks discharge their inflow through returns.
            let expected_out = if is_exit { 0 } else { inflow };
            if out != expected_out {
                bad.push(b);
            }
        }
        bad
    }
}

/// The difference between two [`EdgeProfile`]s of the *same* CFG: which
/// edge counts changed, and whether the entry count changed.
///
/// This is the seed of the driver's delta-driven re-optimization: every
/// changed edge dirties the PST regions whose folded placement products
/// price that edge, and only those regions (plus their ancestor path to
/// the root) are re-folded. An empty delta proves the two profiles are
/// identical, so every profile-derived product may be reused wholesale.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileDelta {
    changed_edges: Vec<EdgeId>,
    entry_changed: bool,
}

impl ProfileDelta {
    /// Computes the delta from `old` to `new`.
    ///
    /// # Panics
    ///
    /// Panics if the profiles have different shapes (they must describe
    /// the same CFG snapshot).
    pub fn between(old: &EdgeProfile, new: &EdgeProfile) -> Self {
        assert_eq!(
            old.edge_counts.len(),
            new.edge_counts.len(),
            "profile delta across different CFG shapes"
        );
        let changed_edges = old
            .edge_counts
            .iter()
            .zip(&new.edge_counts)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| EdgeId::from_index(i))
            .collect();
        ProfileDelta {
            changed_edges,
            entry_changed: old.entry_count != new.entry_count,
        }
    }

    /// Edges whose counts differ, in ascending [`EdgeId`] order.
    pub fn changed_edges(&self) -> &[EdgeId] {
        &self.changed_edges
    }

    /// Whether the function entry count differs.
    pub fn entry_changed(&self) -> bool {
        self.entry_changed
    }

    /// `true` iff the two profiles were identical (no edge nor the entry
    /// count changed) — block counts are derived, so nothing else can
    /// differ either.
    pub fn is_empty(&self) -> bool {
        self.changed_edges.is_empty() && !self.entry_changed
    }
}

impl fmt::Debug for EdgeProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EdgeProfile")
            .field("entry_count", &self.entry_count)
            .field("edge_counts", &self.edge_counts)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{Cond, FunctionBuilder, Reg};

    fn diamond() -> (spillopt_ir::Function, [BlockId; 4]) {
        let mut fb = FunctionBuilder::new("d", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        let y = fb.li(1);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(y), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.ret(None);
        (fb.finish(), [a, b, c, d])
    }

    #[test]
    fn block_counts_are_inflow() {
        let (f, [a, b, c, d]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut counts = vec![0u64; cfg.num_edges()];
        counts[cfg.edge_between(a, b).unwrap().index()] = 30;
        counts[cfg.edge_between(a, c).unwrap().index()] = 70;
        counts[cfg.edge_between(b, d).unwrap().index()] = 30;
        counts[cfg.edge_between(c, d).unwrap().index()] = 70;
        let p = EdgeProfile::new(&cfg, counts, 100);
        assert_eq!(p.block_count(a), 100);
        assert_eq!(p.block_count(b), 30);
        assert_eq!(p.block_count(c), 70);
        assert_eq!(p.block_count(d), 100);
        assert!(p.flow_violations(&cfg).is_empty());
    }

    #[test]
    fn flow_violation_detected() {
        let (f, [a, b, _c, _d]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut counts = vec![0u64; cfg.num_edges()];
        counts[cfg.edge_between(a, b).unwrap().index()] = 5;
        let p = EdgeProfile::new(&cfg, counts, 100);
        assert!(!p.flow_violations(&cfg).is_empty());
    }

    #[test]
    fn delta_names_exactly_the_changed_edges() {
        let (f, [a, b, ..]) = diamond();
        let cfg = Cfg::compute(&f);
        let counts = vec![5u64; cfg.num_edges()];
        let p = EdgeProfile::new(&cfg, counts.clone(), 3);
        assert!(ProfileDelta::between(&p, &p).is_empty());

        let ab = cfg.edge_between(a, b).unwrap();
        let mut bumped = counts.clone();
        bumped[ab.index()] = 9;
        let q = EdgeProfile::new(&cfg, bumped, 3);
        let d = ProfileDelta::between(&p, &q);
        assert_eq!(d.changed_edges(), &[ab]);
        assert!(!d.entry_changed());
        assert!(!d.is_empty());

        let r = EdgeProfile::new(&cfg, counts, 4);
        let d = ProfileDelta::between(&p, &r);
        assert!(d.changed_edges().is_empty());
        assert!(d.entry_changed());
        assert!(!d.is_empty());
    }

    #[test]
    fn accumulate_and_scale() {
        let (f, [a, b, ..]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut counts = vec![1u64; cfg.num_edges()];
        counts[cfg.edge_between(a, b).unwrap().index()] = 2;
        let mut p = EdgeProfile::new(&cfg, counts.clone(), 3);
        let q = EdgeProfile::new(&cfg, counts, 3);
        p.accumulate(&q);
        assert_eq!(p.entry_count(), 6);
        assert_eq!(p.edge_count(cfg.edge_between(a, b).unwrap()), 4);
        p.scale(10);
        assert_eq!(p.entry_count(), 60);
        assert_eq!(p.edge_count(cfg.edge_between(a, b).unwrap()), 40);
    }
}
