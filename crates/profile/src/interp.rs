//! A deterministic interpreter for the IR.
//!
//! The interpreter serves three purposes in the reproduction:
//!
//! 1. **Profiling** — it counts every edge traversal, producing the exact
//!    [`EdgeProfile`]s the placement passes consume (the paper profiles
//!    SPEC programs to the same end);
//! 2. **Measurement** — it counts executed instructions by provenance, so
//!    that dynamic spill-code overhead is measured on the *actual*
//!    transformed program (including jump blocks), not just predicted by a
//!    cost model;
//! 3. **Verification** — it dynamically checks the register-usage
//!    convention: every in-module call records the callee-saved register
//!    file on entry and fails if a callee returns with any callee-saved
//!    register changed. After register allocation and save/restore
//!    insertion, running a program must produce the same result as the
//!    pre-allocation program.
//!
//! Calls clobber all caller-saved registers with deterministic
//! pseudo-random junk drawn from a sequence shared across runs, so a
//! pre-allocation (virtual-register) run and a post-allocation run observe
//! identical values exactly when the allocation is correct.

use crate::events::ExecCounts;
use crate::profile::EdgeProfile;
use spillopt_ir::{BlockId, Callee, Cfg, EdgeId, FuncId, InstKind, Module, Reg, SuccPos, Target};
use std::error::Error;
use std::fmt;

/// An execution failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The instruction budget was exhausted.
    OutOfFuel,
    /// Call nesting exceeded the configured limit.
    CallDepthExceeded,
    /// A callee returned with a callee-saved register modified — the
    /// register-usage convention was violated (an incorrect save/restore
    /// placement or register allocation).
    CalleeSavedViolation {
        /// Name of the offending callee.
        func: String,
        /// The violated register.
        reg: spillopt_ir::PReg,
    },
    /// A function was entered with more arguments than argument registers.
    TooManyArgs,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfFuel => write!(f, "instruction budget exhausted"),
            ExecError::CallDepthExceeded => write!(f, "call depth exceeded"),
            ExecError::CalleeSavedViolation { func, reg } => {
                write!(f, "callee-saved register {reg} clobbered by `{func}`")
            }
            ExecError::TooManyArgs => write!(f, "too many call arguments"),
        }
    }
}

impl Error for ExecError {}

/// SplitMix64: the deterministic junk sequence used for external call
/// results and caller-saved clobbers.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic virtual machine over a [`Module`].
///
/// Counters and edge profiles accumulate across calls until
/// [`reset_counters`](Machine::reset_counters).
#[derive(Debug)]
pub struct Machine<'m> {
    module: &'m Module,
    target: &'m Target,
    cfgs: Vec<Cfg>,
    edge_counts: Vec<Vec<u64>>,
    entry_counts: Vec<u64>,
    counts: ExecCounts,
    pregs: Vec<i64>,
    fuel: u64,
    max_depth: usize,
    junk_counter: u64,
}

impl<'m> Machine<'m> {
    /// Creates a machine for `module`. The default fuel is 2^32
    /// instructions and the default call depth limit 512.
    pub fn new(module: &'m Module, target: &'m Target) -> Self {
        let cfgs: Vec<Cfg> = module
            .func_ids()
            .map(|f| Cfg::compute(module.func(f)))
            .collect();
        let edge_counts = cfgs.iter().map(|c| vec![0u64; c.num_edges()]).collect();
        Machine {
            module,
            target,
            cfgs,
            edge_counts,
            entry_counts: vec![0; module.num_funcs()],
            counts: ExecCounts::new(),
            pregs: vec![0; target.reg_index_limit()],
            fuel: 1 << 32,
            max_depth: 512,
            junk_counter: 0,
        }
    }

    /// Sets the instruction budget for subsequent calls.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Resets all counters, edge profiles, the junk sequence, and the
    /// physical register file (so that repeated measurements are
    /// independent and runs are comparable).
    pub fn reset_counters(&mut self) {
        for v in &mut self.edge_counts {
            v.fill(0);
        }
        self.entry_counts.fill(0);
        self.counts = ExecCounts::new();
        self.junk_counter = 0;
        self.pregs.fill(0);
    }

    /// Returns the accumulated instruction counters.
    pub fn counts(&self) -> &ExecCounts {
        &self.counts
    }

    /// Returns the CFG snapshot the machine profiles `f` against.
    pub fn cfg(&self, f: FuncId) -> &Cfg {
        &self.cfgs[f.index()]
    }

    /// Returns the accumulated edge profile of `f`.
    pub fn edge_profile(&self, f: FuncId) -> EdgeProfile {
        EdgeProfile::new(
            &self.cfgs[f.index()],
            self.edge_counts[f.index()].clone(),
            self.entry_counts[f.index()],
        )
    }

    /// Returns how many times `f` was entered.
    pub fn entry_count(&self, f: FuncId) -> u64 {
        self.entry_counts[f.index()]
    }

    /// Calls function `f` with the given arguments (placed in the target's
    /// argument registers) and runs it to completion.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on fuel exhaustion, call-depth overflow, or a
    /// callee-saved convention violation.
    pub fn call(&mut self, f: FuncId, args: &[i64]) -> Result<i64, ExecError> {
        if args.len() > self.target.arg_regs().len() {
            return Err(ExecError::TooManyArgs);
        }
        let arg_regs: Vec<usize> = self.target.arg_regs().iter().map(|p| p.index()).collect();
        for (i, &a) in args.iter().enumerate() {
            self.pregs[arg_regs[i]] = a;
        }
        self.exec_function(f, 0)
    }

    fn junk(&mut self) -> i64 {
        self.junk_counter += 1;
        splitmix64(self.junk_counter) as i64
    }

    /// Clobbers all caller-saved registers with junk, then writes `ret`
    /// into the return register. Mirrors what an arbitrary callee may do.
    fn clobber_caller_saved(&mut self, ret: Option<i64>) {
        for p in self.target.caller_saved().to_vec() {
            let j = self.junk();
            self.pregs[p.index()] = j;
        }
        if let Some(v) = ret {
            self.pregs[self.target.ret_reg().index()] = v;
        }
    }

    fn exec_function(&mut self, f: FuncId, depth: usize) -> Result<i64, ExecError> {
        if depth > self.max_depth {
            return Err(ExecError::CallDepthExceeded);
        }
        self.entry_counts[f.index()] += 1;
        let func = self.module.func(f);
        let mut vregs = vec![0i64; func.num_vregs()];
        let mut frame = vec![0i64; func.frame().num_slots()];

        let mut block = func.entry();
        let ret_value;
        'frame: loop {
            let insts_len = func.block(block).insts.len();
            let mut idx = 0;
            loop {
                if idx == insts_len {
                    // Implicit fall-through.
                    let e = self.succ_edge(f, block, SuccPos::Only);
                    self.edge_counts[f.index()][e.index()] += 1;
                    block = self.cfgs[f.index()].edge(e).to;
                    continue 'frame;
                }
                if self.fuel == 0 {
                    return Err(ExecError::OutOfFuel);
                }
                self.fuel -= 1;
                let inst = &self.module.func(f).block(block).insts[idx];
                self.counts.record(inst);
                // Clone small pieces out of the instruction so that `self`
                // can be re-borrowed mutably.
                match inst.kind.clone() {
                    InstKind::LoadImm { dst, imm } => {
                        write(&mut self.pregs, &mut vregs, dst, imm);
                    }
                    InstKind::Bin { op, dst, lhs, rhs } => {
                        let a = read(&self.pregs, &vregs, lhs);
                        let b = read(&self.pregs, &vregs, rhs);
                        write(&mut self.pregs, &mut vregs, dst, op.eval(a, b));
                    }
                    InstKind::BinImm { op, dst, lhs, imm } => {
                        let a = read(&self.pregs, &vregs, lhs);
                        write(&mut self.pregs, &mut vregs, dst, op.eval(a, imm));
                    }
                    InstKind::Move { dst, src } => {
                        let v = read(&self.pregs, &vregs, src);
                        write(&mut self.pregs, &mut vregs, dst, v);
                    }
                    InstKind::Load { dst, slot, .. } => {
                        let v = frame[slot.index()];
                        write(&mut self.pregs, &mut vregs, dst, v);
                    }
                    InstKind::Store { src, slot, .. } => {
                        frame[slot.index()] = read(&self.pregs, &vregs, src);
                    }
                    InstKind::Call { callee, ret, .. } => {
                        let result = match callee {
                            Callee::External(_) => {
                                let r = self.junk();
                                self.clobber_caller_saved(Some(r));
                                r
                            }
                            Callee::Func(g) => {
                                // Record callee-saved registers; the callee
                                // must preserve them.
                                let snapshot: Vec<(usize, i64)> = self
                                    .target
                                    .callee_saved()
                                    .iter()
                                    .map(|p| (p.index(), self.pregs[p.index()]))
                                    .collect();
                                let r = self.exec_function(g, depth + 1)?;
                                for &(pi, old) in &snapshot {
                                    if self.pregs[pi] != old {
                                        return Err(ExecError::CalleeSavedViolation {
                                            func: self.module.func(g).name().to_string(),
                                            reg: spillopt_ir::PReg::new(pi as u8),
                                        });
                                    }
                                }
                                self.clobber_caller_saved(Some(r));
                                r
                            }
                        };
                        if let Some(dst) = ret {
                            write(&mut self.pregs, &mut vregs, dst, result);
                        }
                    }
                    InstKind::Jump { target } => {
                        let e = self.succ_edge(f, block, SuccPos::Only);
                        self.edge_counts[f.index()][e.index()] += 1;
                        block = target;
                        continue 'frame;
                    }
                    InstKind::Branch {
                        cond,
                        lhs,
                        rhs,
                        taken,
                        fallthrough,
                    } => {
                        let a = read(&self.pregs, &vregs, lhs);
                        let b = read(&self.pregs, &vregs, rhs);
                        let (pos, next) = if cond.eval(a, b) {
                            (SuccPos::Taken, taken)
                        } else {
                            (SuccPos::NotTaken, fallthrough)
                        };
                        let e = self.succ_edge(f, block, pos);
                        self.edge_counts[f.index()][e.index()] += 1;
                        block = next;
                        continue 'frame;
                    }
                    InstKind::Return { value } => {
                        ret_value = match value {
                            Some(r) => read(&self.pregs, &vregs, r),
                            None => 0,
                        };
                        break 'frame;
                    }
                }
                idx += 1;
            }
        }
        Ok(ret_value)
    }

    fn succ_edge(&self, f: FuncId, b: BlockId, pos: SuccPos) -> EdgeId {
        let cfg = &self.cfgs[f.index()];
        for &e in cfg.succ_edges(b) {
            if cfg.edge(e).pos == pos {
                return e;
            }
        }
        panic!("no successor edge with pos {pos:?} in block {b}");
    }
}

fn read(pregs: &[i64], vregs: &[i64], r: Reg) -> i64 {
    match r {
        Reg::Virt(v) => vregs[v.index()],
        Reg::Phys(p) => pregs[p.index()],
    }
}

fn write(pregs: &mut [i64], vregs: &mut [i64], r: Reg, val: i64) {
    match r {
        Reg::Virt(v) => vregs[v.index()] = val,
        Reg::Phys(p) => pregs[p.index()] = val,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
