//! # spillopt-profile
//!
//! Profiling substrate for the *spillopt* reproduction of Lupo & Wilken
//! (CGO 2006): edge profiles, a deterministic IR interpreter that measures
//! them (and dynamically checks the register-usage convention), and a
//! synthetic random-walk profiler for bare CFGs.
//!
//! The paper's algorithm is *profile-guided*: every save/restore location
//! is priced by the dynamic execution count of the edge or block it
//! occupies. [`EdgeProfile`] carries those counts; [`Machine`] produces
//! them by running programs; [`ExecCounts`] attributes every executed
//! instruction to its provenance so the dynamic spill-code overhead of
//! Figure 5 is measured rather than estimated.
//!
//! # Examples
//!
//! ```
//! use spillopt_ir::{FunctionBuilder, Module, Reg, Target};
//! use spillopt_profile::Machine;
//!
//! let mut fb = FunctionBuilder::new("answer", 0);
//! let b = fb.create_block(None);
//! fb.switch_to(b);
//! let v = fb.li(42);
//! fb.ret(Some(Reg::Virt(v)));
//!
//! let mut module = Module::new("demo");
//! let f = module.add_func(fb.finish());
//! let target = Target::default();
//! let mut machine = Machine::new(&module, &target);
//! assert_eq!(machine.call(f, &[]).unwrap(), 42);
//! assert_eq!(machine.entry_count(f), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod events;
pub mod interp;
pub mod profile;
pub mod synth;

pub use events::{ExecCounts, SpillCounts};
pub use interp::{ExecError, Machine};
pub use profile::{EdgeProfile, ProfileDelta};
pub use synth::{random_walk_profile, random_walk_profile_reference};
