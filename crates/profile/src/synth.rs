//! Synthetic profiles for bare CFGs.
//!
//! Unit tests and ablations sometimes need a plausible profile for a CFG
//! whose instructions are meaningless (e.g. hand-built shapes). The
//! random-walk profiler produces a flow-conserving integer profile without
//! executing any instruction semantics.

use crate::profile::EdgeProfile;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spillopt_ir::{BlockId, Cfg};

/// Generates a flow-conserving profile by simulating `walks` random walks
/// from entry to a return block.
///
/// Successors are chosen uniformly at random; once a walk exceeds
/// `max_steps` steps it greedily follows the successor closest to an exit,
/// so every walk terminates and Kirchhoff flow conservation holds exactly.
///
/// The walk consumes the same RNG stream as
/// [`random_walk_profile_reference`] and produces the identical profile;
/// the per-step work runs on dense tables (a per-block exit flag, a flat
/// edge-target array, and a precomputed drain edge per block) instead of
/// scanning the exit-block list and re-deriving the drain choice every
/// step.
///
/// # Panics
///
/// Panics if the CFG has blocks that cannot reach an exit (the IR verifier
/// rejects such functions).
pub fn random_walk_profile(cfg: &Cfg, walks: u64, max_steps: u64, seed: u64) -> EdgeProfile {
    let n = cfg.num_blocks();
    let mut is_exit = vec![false; n];
    for &b in cfg.exit_blocks() {
        is_exit[b.index()] = true;
    }
    let edge_to: Vec<u32> = cfg.edges().map(|(_, e)| e.to.index() as u32).collect();
    // Per block: its successor edge ids, and the drain edge (successor
    // closest to an exit, first wins ties — exactly the reference's
    // `min_by_key`).
    let dist = distance_to_exit(cfg);
    let mut drain = vec![u32::MAX; n];
    for (bi, slot) in drain.iter_mut().enumerate() {
        let succs = cfg.succ_edges(BlockId::from_index(bi));
        if let Some(&e) = succs
            .iter()
            .min_by_key(|&&e| dist[edge_to[e.index()] as usize])
        {
            *slot = e.index() as u32;
        }
    }

    // Successor edge ids flattened to CSR: one contiguous array, no
    // per-block Vec indirection on the hot stepping loop.
    let mut succ_off = Vec::with_capacity(n + 1);
    let mut succ_items: Vec<u32> = Vec::with_capacity(cfg.num_edges());
    succ_off.push(0u32);
    for bi in 0..n {
        for &e in cfg.succ_edges(BlockId::from_index(bi)) {
            succ_items.push(e.index() as u32);
        }
        succ_off.push(succ_items.len() as u32);
    }

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut counts = vec![0u64; cfg.num_edges()];
    for _ in 0..walks {
        let mut b = cfg.entry().index();
        let mut steps = 0u64;
        while !is_exit[b] {
            let succs = &succ_items[succ_off[b] as usize..succ_off[b + 1] as usize];
            assert!(!succs.is_empty(), "non-exit block without successors");
            let e = if steps < max_steps {
                succs[rng.gen_range(0..succs.len())] as usize
            } else {
                // Drain to the nearest exit.
                drain[b] as usize
            };
            counts[e] += 1;
            b = edge_to[e] as usize;
            steps += 1;
        }
    }

    EdgeProfile::new(cfg, counts, walks)
}

/// The retired walk implementation, kept verbatim as the reference for
/// the perf-trajectory bench (`spillopt bench`). Bit-identical output to
/// [`random_walk_profile`].
pub fn random_walk_profile_reference(
    cfg: &Cfg,
    walks: u64,
    max_steps: u64,
    seed: u64,
) -> EdgeProfile {
    let dist = distance_to_exit(cfg);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut counts = vec![0u64; cfg.num_edges()];

    for _ in 0..walks {
        let mut b = cfg.entry();
        let mut steps = 0u64;
        while !cfg.exit_blocks().contains(&b) {
            let succs = cfg.succ_edges(b);
            assert!(!succs.is_empty(), "non-exit block without successors");
            let e = if steps < max_steps {
                succs[rng.gen_range(0..succs.len())]
            } else {
                // Drain to the nearest exit.
                *succs
                    .iter()
                    .min_by_key(|&&e| dist[cfg.edge(e).to.index()])
                    .expect("non-empty")
            };
            counts[e.index()] += 1;
            b = cfg.edge(e).to;
            steps += 1;
        }
    }

    EdgeProfile::new(cfg, counts, walks)
}

/// BFS distance from each block to the nearest exit block.
fn distance_to_exit(cfg: &Cfg) -> Vec<u32> {
    let mut dist = vec![u32::MAX; cfg.num_blocks()];
    let mut queue: std::collections::VecDeque<BlockId> =
        cfg.exit_blocks().iter().copied().collect();
    for &b in cfg.exit_blocks() {
        dist[b.index()] = 0;
    }
    while let Some(b) = queue.pop_front() {
        for p in cfg.pred_blocks(b) {
            if dist[p.index()] == u32::MAX {
                dist[p.index()] = dist[b.index()] + 1;
                queue.push_back(p);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{Cond, FunctionBuilder, Reg};

    fn loopy() -> spillopt_ir::Function {
        let mut fb = FunctionBuilder::new("loopy", 0);
        let entry = fb.create_block(None);
        let header = fb.create_block(None);
        let body = fb.create_block(None);
        let exit = fb.create_block(None);
        fb.switch_to(entry);
        let i = fb.li(0);
        let n = fb.li(10);
        fb.jump(header);
        fb.switch_to(header);
        fb.branch(Cond::Ge, Reg::Virt(i), Reg::Virt(n), exit, body);
        fb.switch_to(body);
        fb.jump(header);
        fb.switch_to(exit);
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn conserves_flow() {
        let f = loopy();
        let cfg = Cfg::compute(&f);
        let p = random_walk_profile(&cfg, 500, 64, 42);
        assert_eq!(p.entry_count(), 500);
        assert!(p.flow_violations(&cfg).is_empty());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let f = loopy();
        let cfg = Cfg::compute(&f);
        let a = random_walk_profile(&cfg, 100, 32, 7);
        let b = random_walk_profile(&cfg, 100, 32, 7);
        assert_eq!(a, b);
        let c = random_walk_profile(&cfg, 100, 32, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn fast_walk_is_bit_identical_to_reference() {
        let f = loopy();
        let cfg = Cfg::compute(&f);
        for seed in 0..5u64 {
            let fast = random_walk_profile(&cfg, 200, 16, seed);
            let slow = random_walk_profile_reference(&cfg, 200, 16, seed);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn respects_step_cap() {
        let f = loopy();
        let cfg = Cfg::compute(&f);
        // With a tiny cap, walks still terminate.
        let p = random_walk_profile(&cfg, 50, 1, 3);
        assert!(p.flow_violations(&cfg).is_empty());
    }
}
