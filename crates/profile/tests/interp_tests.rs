//! Integration tests for the interpreter: semantics, profiling accuracy,
//! and dynamic convention checking.

use spillopt_ir::{BinOp, Callee, Cond, FunctionBuilder, InstKind, Module, PReg, Reg, Target};
use spillopt_profile::{ExecError, Machine};

/// sum(n) = 0 + 1 + ... + (n-1) via a counted loop.
fn sum_func() -> spillopt_ir::Function {
    let mut fb = FunctionBuilder::new("sum", 1);
    let entry = fb.create_block(Some("entry"));
    let header = fb.create_block(Some("header"));
    let body = fb.create_block(Some("body"));
    let exit = fb.create_block(Some("exit"));
    fb.switch_to(entry);
    let n = fb.param(0);
    let i = fb.li(0);
    let acc = fb.li(0);
    fb.jump(header);
    fb.switch_to(header);
    fb.branch(Cond::Ge, Reg::Virt(i), Reg::Virt(n), exit, body);
    fb.switch_to(body);
    fb.emit(InstKind::Bin {
        op: BinOp::Add,
        dst: Reg::Virt(acc),
        lhs: Reg::Virt(acc),
        rhs: Reg::Virt(i),
    });
    fb.emit(InstKind::BinImm {
        op: BinOp::Add,
        dst: Reg::Virt(i),
        lhs: Reg::Virt(i),
        imm: 1,
    });
    fb.jump(header);
    fb.switch_to(exit);
    fb.ret(Some(Reg::Virt(acc)));
    fb.finish()
}

#[test]
fn computes_loop_sum() {
    let mut module = Module::new("m");
    let f = module.add_func(sum_func());
    let target = Target::default();
    let mut m = Machine::new(&module, &target);
    assert_eq!(m.call(f, &[10]).unwrap(), 45);
    assert_eq!(m.call(f, &[0]).unwrap(), 0);
    assert_eq!(m.call(f, &[1]).unwrap(), 0);
    assert_eq!(m.call(f, &[5]).unwrap(), 10);
}

#[test]
fn edge_profile_matches_trip_counts() {
    let mut module = Module::new("m");
    let f = module.add_func(sum_func());
    let target = Target::default();
    let mut m = Machine::new(&module, &target);
    m.call(f, &[10]).unwrap();
    let cfg = m.cfg(f).clone();
    let p = m.edge_profile(f);
    assert_eq!(p.entry_count(), 1);
    assert!(p.flow_violations(&cfg).is_empty());
    // header executes 11 times: 10 into body, 1 into exit.
    let func = module.func(f);
    let header = func.block_ids().nth(1).unwrap();
    let body = func.block_ids().nth(2).unwrap();
    let exit = func.block_ids().nth(3).unwrap();
    assert_eq!(p.block_count(header), 11);
    assert_eq!(p.edge_count(cfg.edge_between(header, body).unwrap()), 10);
    assert_eq!(p.edge_count(cfg.edge_between(header, exit).unwrap()), 1);
    assert_eq!(p.edge_count(cfg.edge_between(body, header).unwrap()), 10);
}

#[test]
fn profiles_accumulate_across_calls() {
    let mut module = Module::new("m");
    let f = module.add_func(sum_func());
    let target = Target::default();
    let mut m = Machine::new(&module, &target);
    for n in [3, 4, 5] {
        m.call(f, &[n]).unwrap();
    }
    assert_eq!(m.entry_count(f), 3);
    let p = m.edge_profile(f);
    assert!(p.flow_violations(m.cfg(f)).is_empty());
    m.reset_counters();
    assert_eq!(m.entry_count(f), 0);
}

#[test]
fn fuel_limits_execution() {
    let mut module = Module::new("m");
    let f = module.add_func(sum_func());
    let target = Target::default();
    let mut m = Machine::new(&module, &target);
    m.set_fuel(10);
    assert_eq!(m.call(f, &[1_000_000]), Err(ExecError::OutOfFuel));
}

#[test]
fn external_calls_are_deterministic_and_clobber() {
    // f(): a = 7 (kept in a vreg); call ext; return a + ext result.
    let mut fb = FunctionBuilder::new("f", 0);
    let b = fb.create_block(None);
    fb.switch_to(b);
    let a = fb.li(7);
    let r = fb.call(Callee::External(0), &[]);
    let s = fb.bin(BinOp::Add, Reg::Virt(a), Reg::Virt(r));
    fb.ret(Some(Reg::Virt(s)));
    let mut module = Module::new("m");
    let f = module.add_func(fb.finish());
    let target = Target::default();

    let mut m1 = Machine::new(&module, &target);
    let v1 = m1.call(f, &[]).unwrap();
    let mut m2 = Machine::new(&module, &target);
    let v2 = m2.call(f, &[]).unwrap();
    assert_eq!(v1, v2, "junk sequence must be deterministic");

    // A fresh machine consuming the same junk sequence differently would
    // diverge; the same program twice on one machine uses later junk.
    let v3 = m1.call(f, &[]).unwrap();
    assert_ne!(v1, v3, "junk sequence advances between calls");
}

#[test]
fn in_module_calls_preserve_results() {
    // helper(x) = x * 2; main() = helper(21).
    let mut module = Module::new("m");
    let mut hb = FunctionBuilder::new("helper", 1);
    let b = hb.create_block(None);
    hb.switch_to(b);
    let x = hb.param(0);
    let two = hb.li(2);
    let y = hb.bin(BinOp::Mul, Reg::Virt(x), Reg::Virt(two));
    hb.ret(Some(Reg::Virt(y)));
    let helper_func = hb.finish();

    let mut mb = FunctionBuilder::new("main", 0);
    let b = mb.create_block(None);
    mb.switch_to(b);
    let a = mb.li(21);
    // Reserve the FuncId for helper: it will be id 1 (added second).
    let r = mb.call(
        Callee::Func(spillopt_ir::FuncId::from_index(1)),
        &[Reg::Virt(a)],
    );
    mb.ret(Some(Reg::Virt(r)));
    let main_func = mb.finish();

    let main_id = module.add_func(main_func);
    let _helper_id = module.add_func(helper_func);
    let target = Target::default();
    let mut m = Machine::new(&module, &target);
    assert_eq!(m.call(main_id, &[]).unwrap(), 42);
    assert_eq!(m.counts().calls, 1);
}

#[test]
fn callee_saved_violation_is_detected() {
    // bad() writes a callee-saved register and returns without restoring.
    let cs = PReg::new(11); // callee-saved under the default target
    let mut bb = FunctionBuilder::new("bad", 0);
    let b = bb.create_block(None);
    bb.switch_to(b);
    bb.emit(InstKind::LoadImm {
        dst: Reg::Phys(cs),
        imm: 999,
    });
    bb.ret(None);
    let bad = bb.finish();

    let mut mb = FunctionBuilder::new("main", 0);
    let b = mb.create_block(None);
    mb.switch_to(b);
    // Make the callee-saved register's original value observable: set it
    // to 5 first (as if the caller's caller had a live value there).
    mb.emit(InstKind::LoadImm {
        dst: Reg::Phys(cs),
        imm: 5,
    });
    let _ = mb.call(Callee::Func(spillopt_ir::FuncId::from_index(1)), &[]);
    mb.ret(None);
    let main_func = mb.finish();

    let mut module = Module::new("m");
    let main_id = module.add_func(main_func);
    let _ = module.add_func(bad);
    let target = Target::default();
    let mut m = Machine::new(&module, &target);
    match m.call(main_id, &[]) {
        Err(ExecError::CalleeSavedViolation { func, reg }) => {
            assert_eq!(func, "bad");
            assert_eq!(reg, cs);
        }
        other => panic!("expected violation, got {other:?}"),
    }
}

#[test]
fn callee_saved_restore_passes_the_check() {
    // good() saves r11 to a slot, clobbers it, restores it before return.
    let cs = PReg::new(11);
    let mut gb = FunctionBuilder::new("good", 0);
    let b = gb.create_block(None);
    gb.switch_to(b);
    let slot = gb.new_slot();
    gb.emit(InstKind::Store {
        src: Reg::Phys(cs),
        slot,
        kind: spillopt_ir::MemKind::CalleeSave,
    });
    gb.emit(InstKind::LoadImm {
        dst: Reg::Phys(cs),
        imm: 123,
    });
    gb.emit(InstKind::Load {
        dst: Reg::Phys(cs),
        slot,
        kind: spillopt_ir::MemKind::CalleeSave,
    });
    gb.ret(None);
    let good = gb.finish();

    let mut mb = FunctionBuilder::new("main", 0);
    let b = mb.create_block(None);
    mb.switch_to(b);
    mb.emit(InstKind::LoadImm {
        dst: Reg::Phys(cs),
        imm: 5,
    });
    let _ = mb.call(Callee::Func(spillopt_ir::FuncId::from_index(1)), &[]);
    mb.ret(None);
    let main_func = mb.finish();

    let mut module = Module::new("m");
    let main_id = module.add_func(main_func);
    let _ = module.add_func(good);
    let target = Target::default();
    let mut m = Machine::new(&module, &target);
    assert!(m.call(main_id, &[]).is_ok());
    // One save + one restore recorded.
    assert_eq!(m.counts().callee_save_overhead(), 2);
}

#[test]
fn recursion_depth_is_limited() {
    // f() = call f() — infinite recursion.
    let mut fb = FunctionBuilder::new("f", 0);
    let b = fb.create_block(None);
    fb.switch_to(b);
    let _ = fb.call(Callee::Func(spillopt_ir::FuncId::from_index(0)), &[]);
    fb.ret(None);
    let mut module = Module::new("m");
    let f = module.add_func(fb.finish());
    let target = Target::default();
    let mut m = Machine::new(&module, &target);
    assert_eq!(m.call(f, &[]), Err(ExecError::CallDepthExceeded));
}

#[test]
fn fallthrough_blocks_execute() {
    // entry falls through into the next block with no terminator.
    let mut fb = FunctionBuilder::new("ft", 0);
    let a = fb.create_block(None);
    let b = fb.create_block(None);
    fb.switch_to(a);
    let v = fb.li(11);
    fb.switch_to(b);
    fb.ret(Some(Reg::Virt(v)));
    let mut module = Module::new("m");
    let f = module.add_func(fb.finish());
    let target = Target::default();
    let mut m = Machine::new(&module, &target);
    assert_eq!(m.call(f, &[]).unwrap(), 11);
    let p = m.edge_profile(f);
    let cfg = m.cfg(f);
    assert_eq!(p.edge_count(cfg.edge_between(a, b).unwrap()), 1);
}
