//! Process-wide pipeline instrumentation: spans, counters, and traces.
//!
//! The recorder is a single process-global instrument shared by every
//! crate on the hot path. Call sites are unconditional — [`span`],
//! [`count`], and [`sample`] are compiled into the pipeline permanently
//! — but when no recording is active their entire cost is one relaxed
//! load of an `AtomicBool` and a branch. Enabling is explicit and
//! exclusive: a [`Recording`] guard flips the flag, collects events,
//! and on [`Recording::finish`] yields a [`Trace`] that can be written
//! as Chrome Trace Event JSON (loadable in Perfetto or
//! `chrome://tracing`) or folded into an aggregated
//! [`MetricsSnapshot`].
//!
//! Events are buffered per thread without locks: each thread appends
//! spans, counter deltas, and samples to a thread-local buffer and
//! flushes it into the shared sink only when its outermost span closes
//! (or on an explicit [`flush`]). Worker threads that run discrete jobs
//! therefore drain themselves at every job boundary, and a recording
//! that finishes after a batch has joined observes every event.
//!
//! Timestamps are monotonic nanoseconds from a process-wide epoch
//! (first use), and every event carries a small sequential thread id,
//! so traces from the work pool interleave correctly on the timeline.
//!
//! The [`fault`] module mounts two more dormant arms on the same probe
//! sites: deterministic fault injection (every `span` site is a named
//! injection point) and cooperative budgets ([`fault::budget_tick`]),
//! each costing one extra relaxed load while disarmed.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[allow(missing_docs)]
pub mod fault;

use spillopt_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use spillopt_sync::{Mutex, MutexGuard, OnceLock};
use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Instant;

/// Master switch: one relaxed load of this is the entire disabled-mode
/// hot-path cost.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Recording generation. Bumped at every [`Recording::start`]; events
/// buffered under an older generation are stale (their recording has
/// already finished) and are discarded rather than leaking into the
/// next trace.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Sequential thread ids, assigned on each thread's first event.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// Serializes recordings: the recorder is process-global, so only one
/// trace can be collected at a time (concurrent tests queue here).
static RECORDING: Mutex<()> = Mutex::new(());

/// Shared sink the per-thread buffers flush into.
static SINK: Mutex<Sink> = Mutex::new(Sink {
    spans: Vec::new(),
    samples: Vec::new(),
    counters: None,
});

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// One closed span: a named phase that ran `[start_ns, start_ns +
/// dur_ns)` on thread `tid`.
#[derive(Clone, Copy, Debug)]
pub struct SpanEvent {
    /// Phase name (static so the hot path never allocates).
    pub name: &'static str,
    /// Sequential recorder thread id.
    pub tid: u64,
    /// Monotonic start, nanoseconds since the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// One timestamped counter sample (a point on a counter track, e.g. the
/// pool queue depth at enqueue time).
#[derive(Clone, Copy, Debug)]
pub struct SampleEvent {
    /// Counter track name.
    pub name: &'static str,
    /// Sequential recorder thread id.
    pub tid: u64,
    /// Monotonic timestamp, nanoseconds since the process epoch.
    pub ts_ns: u64,
    /// Sampled value.
    pub value: u64,
}

struct Sink {
    spans: Vec<SpanEvent>,
    samples: Vec<SampleEvent>,
    // Lazily allocated: `Mutex::new` in a `static` needs a const
    // expression, and `HashMap::new` is not const.
    counters: Option<HashMap<&'static str, u64>>,
}

struct ThreadBuf {
    generation: u64,
    tid: u64,
    depth: u32,
    spans: Vec<SpanEvent>,
    samples: Vec<SampleEvent>,
    counters: Vec<(&'static str, u64)>,
}

impl ThreadBuf {
    fn new() -> Self {
        ThreadBuf {
            generation: u64::MAX,
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            depth: 0,
            spans: Vec::new(),
            samples: Vec::new(),
            counters: Vec::new(),
        }
    }

    /// Drops anything buffered under a finished recording and adopts
    /// the current generation.
    fn adopt_generation(&mut self) {
        let generation = GENERATION.load(Ordering::Relaxed);
        if self.generation != generation {
            self.generation = generation;
            self.spans.clear();
            self.samples.clear();
            self.counters.clear();
        }
    }

    fn flush(&mut self) {
        if self.spans.is_empty() && self.samples.is_empty() && self.counters.is_empty() {
            return;
        }
        let mut sink = lock(&SINK);
        // The generation check must happen UNDER the sink lock: checked
        // before it, a flushing thread could pass the check, lose the
        // CPU while the recording finishes and the next one starts (and
        // clears the sink), then wake and append stale events into the
        // new recording. The model checker found exactly that schedule
        // (see `model_stale_flush_never_pollutes_next_recording`);
        // `Recording::start` bumps the generation before it touches the
        // sink, so under the lock the check is authoritative.
        if self.generation != GENERATION.load(Ordering::Relaxed) {
            // The recording this buffer belongs to already finished;
            // its sink was drained, so these events are dead.
            self.spans.clear();
            self.samples.clear();
            self.counters.clear();
            return;
        }
        sink.spans.append(&mut self.spans);
        sink.samples.append(&mut self.samples);
        let totals = sink.counters.get_or_insert_with(HashMap::new);
        for (name, delta) in self.counters.drain(..) {
            *totals.entry(name).or_insert(0) += delta;
        }
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic under the sink lock only ever interrupts event appends;
    // the data is still structurally sound, so poisoning is ignored.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Whether a recording is active. Call sites that must do real work to
/// *produce* a value (e.g. compute a queue depth) gate on this; plain
/// [`span`]/[`count`]/[`sample`] calls do the check themselves.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Opens a named span; the span closes (and is recorded) when the
/// returned guard drops. Disabled mode returns an inert guard after a
/// single branch.
#[inline]
#[must_use = "a span is recorded when its guard drops"]
pub fn span(name: &'static str) -> Span {
    if fault::injecting() {
        fault::probe(name);
    }
    if !enabled() {
        return Span { live: None };
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &'static str) -> Span {
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        b.adopt_generation();
        b.depth += 1;
    });
    Span {
        live: Some((name, now_ns())),
    }
}

/// Guard for an open [`span`]. Recording happens on drop; the guard
/// auto-flushes its thread's buffer when the outermost span closes.
#[derive(Debug)]
pub struct Span {
    live: Option<(&'static str, u64)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((name, start_ns)) = self.live else {
            return;
        };
        let dur_ns = now_ns().saturating_sub(start_ns);
        BUF.with(|b| {
            let mut b = b.borrow_mut();
            let tid = b.tid;
            b.spans.push(SpanEvent {
                name,
                tid,
                start_ns,
                dur_ns,
            });
            b.depth = b.depth.saturating_sub(1);
            if b.depth == 0 {
                b.flush();
            }
        });
    }
}

/// Adds `delta` to the named counter. Totals are aggregated per
/// recording and surface both in the trace (as a final counter event)
/// and in [`MetricsSnapshot::counters`].
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    count_slow(name, delta);
}

#[cold]
fn count_slow(name: &'static str, delta: u64) {
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        b.adopt_generation();
        b.counters.push((name, delta));
        if b.depth == 0 {
            b.flush();
        }
    });
}

/// Records a timestamped sample on the named counter track (e.g. a
/// queue depth). Samples become `ph:"C"` events on the trace timeline.
#[inline]
pub fn sample(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    sample_slow(name, value);
}

#[cold]
fn sample_slow(name: &'static str, value: u64) {
    let ts_ns = now_ns();
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        b.adopt_generation();
        let tid = b.tid;
        b.samples.push(SampleEvent {
            name,
            tid,
            ts_ns,
            value,
        });
        if b.depth == 0 {
            b.flush();
        }
    });
}

/// Flushes the calling thread's buffered events into the shared sink.
/// Normally unnecessary — the outermost span on each thread flushes on
/// close — but long-lived threads that emit only counters/samples
/// between spans can drain themselves explicitly.
pub fn flush() {
    BUF.with(|b| b.borrow_mut().flush());
}

/// An active recording. Constructing one enables the recorder
/// process-wide; [`finish`](Recording::finish) disables it and returns
/// the collected [`Trace`]. Only one recording exists at a time —
/// concurrent starts queue on an internal lock.
#[derive(Debug)]
pub struct Recording {
    _exclusive: MutexGuard<'static, ()>,
}

impl Recording {
    /// Starts an exclusive recording: bumps the generation (stale
    /// thread buffers self-discard), clears the sink, and enables the
    /// recorder.
    pub fn start() -> Recording {
        let exclusive = RECORDING.lock().unwrap_or_else(|p| p.into_inner());
        GENERATION.fetch_add(1, Ordering::Relaxed);
        {
            let mut sink = lock(&SINK);
            sink.spans.clear();
            sink.samples.clear();
            sink.counters = None;
        }
        ENABLED.store(true, Ordering::Relaxed);
        Recording {
            _exclusive: exclusive,
        }
    }

    /// Stops recording and returns everything collected. Events still
    /// buffered on *other* threads inside an open span are abandoned to
    /// the generation check; by construction the driver finishes
    /// recordings only after its batches have joined, so in practice
    /// every worker has already auto-flushed.
    pub fn finish(self) -> Trace {
        ENABLED.store(false, Ordering::Relaxed);
        flush();
        let (mut spans, samples, counters) = {
            let mut sink = lock(&SINK);
            let counters = sink.counters.take().unwrap_or_default();
            (
                std::mem::take(&mut sink.spans),
                std::mem::take(&mut sink.samples),
                counters,
            )
        };
        spans.sort_by_key(|s| (s.start_ns, s.tid, std::cmp::Reverse(s.dur_ns)));
        let mut counters: Vec<(&'static str, u64)> = counters.into_iter().collect();
        counters.sort_unstable();
        Trace {
            spans,
            samples,
            counters,
        }
    }
}

impl Drop for Recording {
    /// A recording dropped without [`finish`](Recording::finish) (e.g.
    /// an error propagating past it) must still disable the recorder —
    /// otherwise every later span in the process would pay the slow
    /// path and accumulate into a sink nobody will ever drain.
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Relaxed);
    }
}

/// Everything one [`Recording`] collected.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Closed spans, sorted by start time.
    pub spans: Vec<SpanEvent>,
    /// Timestamped counter samples, in flush order.
    pub samples: Vec<SampleEvent>,
    /// Final per-name counter totals, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
}

impl Trace {
    /// Renders the trace as Chrome Trace Event JSON: complete (`"X"`)
    /// events for spans, counter (`"C"`) events for samples, and one
    /// closing counter event per aggregate total. The output loads
    /// directly in Perfetto and `chrome://tracing`.
    pub fn chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.spans.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"spillopt\"}}",
        );
        for s in &self.spans {
            out.push(',');
            out.push_str(&format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":{},\"cat\":\"phase\",\
                 \"ts\":{},\"dur\":{}}}",
                s.tid,
                json_str(s.name),
                micros(s.start_ns),
                micros(s.dur_ns)
            ));
        }
        for s in &self.samples {
            out.push(',');
            out.push_str(&format!(
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":{},\"name\":{},\"ts\":{},\
                 \"args\":{{\"value\":{}}}}}",
                s.tid,
                json_str(s.name),
                micros(s.ts_ns),
                s.value
            ));
        }
        let end_ns = self.end_ns();
        for (name, total) in &self.counters {
            out.push(',');
            out.push_str(&format!(
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":{},\"ts\":{},\
                 \"args\":{{\"value\":{}}}}}",
                json_str(name),
                micros(end_ns),
                total
            ));
        }
        out.push_str("]}");
        out
    }

    /// Last timestamp covered by the trace.
    fn end_ns(&self) -> u64 {
        let span_end = self
            .spans
            .iter()
            .map(|s| s.start_ns + s.dur_ns)
            .max()
            .unwrap_or(0);
        let sample_end = self.samples.iter().map(|s| s.ts_ns).max().unwrap_or(0);
        span_end.max(sample_end)
    }

    /// Aggregates spans by name into per-phase statistics plus the
    /// counter totals.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut durations: HashMap<&'static str, Vec<u64>> = HashMap::new();
        for s in &self.spans {
            durations.entry(s.name).or_default().push(s.dur_ns);
        }
        let mut phases: Vec<PhaseStats> = durations
            .into_iter()
            .map(|(name, mut ds)| {
                ds.sort_unstable();
                let count = ds.len() as u64;
                PhaseStats {
                    name,
                    count,
                    total_ns: ds.iter().sum(),
                    p50_ns: percentile(&ds, 50),
                    p95_ns: percentile(&ds, 95),
                    max_ns: *ds.last().unwrap(),
                }
            })
            .collect();
        // Heaviest phase first; name breaks ties deterministically.
        phases.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
        MetricsSnapshot {
            phases,
            counters: self.counters.clone(),
        }
    }
}

/// Aggregated per-phase timing statistics for one recording.
#[derive(Clone, Copy, Debug)]
pub struct PhaseStats {
    /// Phase (span) name.
    pub name: &'static str,
    /// Spans recorded under this name.
    pub count: u64,
    /// Sum of span durations, nanoseconds.
    pub total_ns: u64,
    /// Median span duration (nearest-rank), nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile span duration (nearest-rank), nanoseconds.
    pub p95_ns: u64,
    /// Longest span, nanoseconds.
    pub max_ns: u64,
}

/// The aggregated view of a [`Trace`]: per-phase statistics ordered by
/// total time (heaviest first) plus final counter totals.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Per-phase timing, heaviest total first.
    pub phases: Vec<PhaseStats>,
    /// Counter totals, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], p: u64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (sorted.len() as u64 * p).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Microseconds with nanosecond precision, as a JSON number.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// JSON string literal (names are static identifiers, but escape
/// defensively anyway).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global; these tests serialize so one
    /// test's events never land in another's trace.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let _t = exclusive();
        assert!(!enabled());
        let s = span("never");
        drop(s);
        count("never", 7);
        sample("never", 7);
        // Nothing to assert beyond "no panic, no recording": the next
        // recording must start empty even after these calls.
        let rec = Recording::start();
        let trace = rec.finish();
        assert!(trace.spans.is_empty());
        assert!(trace.counters.is_empty());
    }

    #[test]
    fn spans_counters_and_samples_are_collected() {
        let _t = exclusive();
        let rec = Recording::start();
        {
            let _outer = span("outer");
            let _inner = span("inner");
            count("widgets", 2);
            count("widgets", 3);
            sample("depth", 4);
        }
        let trace = rec.finish();
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"outer") && names.contains(&"inner"));
        assert_eq!(trace.counters, vec![("widgets", 5)]);
        assert_eq!(trace.samples.len(), 1);
        assert_eq!(trace.samples[0].value, 4);
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = trace.spans.iter().find(|s| s.name == "inner").unwrap();
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.dur_ns <= outer.dur_ns + 1_000_000);
    }

    #[test]
    fn worker_threads_flush_on_outermost_span_close() {
        let _t = exclusive();
        let rec = Recording::start();
        spillopt_sync::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _job = span("job");
                    count("jobs", 1);
                });
            }
        });
        let trace = rec.finish();
        assert_eq!(trace.spans.iter().filter(|s| s.name == "job").count(), 4);
        assert_eq!(trace.counters, vec![("jobs", 4)]);
        // Four distinct worker threads → four distinct tids.
        let tids: std::collections::HashSet<u64> = trace.spans.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn chrome_json_has_trace_event_shape() {
        let _t = exclusive();
        let rec = Recording::start();
        {
            let _s = span("phase_a");
            count("hits", 9);
            sample("depth", 1);
        }
        let json = rec.finish().chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"phase_a\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"hits\""));
        assert!(json.contains("\"args\":{\"value\":9}"));
        // ts/dur are decimal microseconds.
        assert!(json.contains("\"ts\":"));
        assert!(json.contains("\"dur\":"));
    }

    #[test]
    fn metrics_aggregate_per_phase() {
        let _t = exclusive();
        let rec = Recording::start();
        for _ in 0..10 {
            let _s = span("work");
        }
        {
            let _s = span("other");
        }
        count("iters", 42);
        let metrics = rec.finish().metrics();
        assert_eq!(metrics.phases.len(), 2);
        let work = metrics.phases.iter().find(|p| p.name == "work").unwrap();
        assert_eq!(work.count, 10);
        assert!(work.p50_ns <= work.p95_ns && work.p95_ns <= work.max_ns);
        assert!(work.total_ns >= work.max_ns);
        assert_eq!(metrics.counters, vec![("iters", 42)]);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let ds = [10, 20, 30, 40];
        assert_eq!(percentile(&ds, 50), 20);
        assert_eq!(percentile(&ds, 95), 40);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 95), 7);
    }

    #[test]
    fn stale_thread_buffers_do_not_leak_across_recordings() {
        let _t = exclusive();
        // Events from recording N must never appear in recording N+1.
        let rec = Recording::start();
        {
            let _s = span("first");
        }
        let t1 = rec.finish();
        assert_eq!(t1.spans.len(), 1);
        let rec = Recording::start();
        let t2 = rec.finish();
        assert!(t2.spans.is_empty(), "stale events leaked: {:?}", t2.spans);
    }

    /// Model-checked regression for the generation-counter protocol: a
    /// worker whose span opened under recording A but whose buffer
    /// flushes late — after A finished, possibly after recording B
    /// already started — must never interleave its stale events into
    /// B's trace, under ANY schedule.
    #[cfg(feature = "model")]
    #[test]
    fn model_stale_flush_never_pollutes_next_recording() {
        use spillopt_sync::model::{check, ModelOptions};
        use spillopt_sync::{thread, Arc, Condvar};

        let _t = exclusive();
        let report = check(ModelOptions::new(), || {
            let rec_a = Recording::start();
            let opened = Arc::new((Mutex::new(false), Condvar::new()));
            let opened2 = Arc::clone(&opened);
            let worker = thread::spawn(move || {
                let guard = span("gen_stale_work");
                {
                    let mut flag = opened2.0.lock().unwrap();
                    *flag = true;
                    opened2.1.notify_one();
                }
                // Scheduling point mid-span: the root may finish A (and
                // even start B) before this buffer flushes.
                thread::yield_now();
                drop(guard);
                flush();
            });
            {
                let mut flag = opened.0.lock().unwrap();
                while !*flag {
                    flag = opened.1.wait(flag).unwrap();
                }
            }
            let _trace_a = rec_a.finish();
            let rec_b = Recording::start();
            {
                let _s = span("gen_fresh_work");
            }
            worker.join().unwrap();
            let trace_b = rec_b.finish();
            assert!(
                trace_b.spans.iter().any(|s| s.name == "gen_fresh_work"),
                "recording B lost its own span"
            );
            assert!(
                trace_b.spans.iter().all(|s| s.name != "gen_stale_work"),
                "stale-generation span leaked into the new trace"
            );
        });
        assert!(
            report.executions > 1,
            "expected >1 interleaving, got {}",
            report.executions
        );
    }
}
