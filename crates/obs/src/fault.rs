//! Fault seams: deterministic injection and cooperative budgets.
//!
//! Both facilities piggyback on the probe sites the recorder already owns:
//! every [`crate::span`] call doubles as a named injection point, and hot
//! loops that report iteration counters can call [`budget_tick`] to honor a
//! caller-imposed deadline. Both are dormant by default — a single relaxed
//! atomic load on the hot path — and are armed per-thread through RAII
//! scopes, so concurrent work on other threads is never perturbed.
//!
//! Trips are delivered as typed panics ([`std::panic::panic_any`]) carrying
//! [`BudgetExceeded`] or [`InjectedFault`] payloads. Callers that arm a
//! scope are expected to wrap the guarded region in `catch_unwind` and
//! downcast the payload to recover the structured cause.

use spillopt_sync::atomic::{AtomicU64, Ordering};
use std::cell::RefCell;
use std::time::Instant;

/// How an armed fault manifests when its site fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectionKind {
    /// An opaque panic, as if the pipeline had a bug at this site.
    Panic,
    /// A recoverable error the pipeline should report, not crash on.
    Error,
    /// Instant budget exhaustion, as if a deadline elapsed here.
    Budget,
}

impl InjectionKind {
    pub fn name(self) -> &'static str {
        match self {
            InjectionKind::Panic => "panic",
            InjectionKind::Error => "error",
            InjectionKind::Budget => "budget",
        }
    }
}

/// One armed fault: fire `kind` at the `nth` (0-based) visit of `site`.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    pub site: &'static str,
    pub nth: u64,
    pub kind: InjectionKind,
}

/// Panic payload thrown when a cooperative budget trips.
#[derive(Clone, Copy, Debug)]
pub struct BudgetExceeded {
    /// The probe site whose tick detected exhaustion.
    pub phase: &'static str,
    /// Which cap tripped.
    pub kind: BudgetKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    WallClock,
    Iterations,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cap = match self.kind {
            BudgetKind::WallClock => "wall-clock deadline",
            BudgetKind::Iterations => "iteration cap",
        };
        write!(f, "budget exceeded in `{}` ({cap})", self.phase)
    }
}

/// Panic payload thrown by a fired injection (kinds `Panic` and `Error`).
#[derive(Clone, Copy, Debug)]
pub struct InjectedFault {
    pub site: &'static str,
    pub nth: u64,
    pub kind: InjectionKind,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected {} at `{}` (occurrence {})",
            self.kind.name(),
            self.site,
            self.nth
        )
    }
}

/// Count of threads with an armed injection scope. Zero means `probe` is
/// never entered; `span` checks this with one relaxed load.
static INJECTING: AtomicU64 = AtomicU64::new(0);
/// One-time installer for the quiet-hook filter below.
static QUIET_HOOK: spillopt_sync::Once = spillopt_sync::Once::new();

/// Installs (once, process-wide) a panic-hook filter that silences this
/// module's typed payloads — they are control flow, thrown only while a
/// scope is armed and always caught at a containment boundary — while
/// delegating every other panic to the hook that was in place. Without
/// this, every contained budget trip would print the default hook's
/// `panicked at ... Box<dyn Any>` banner to stderr.
fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.is::<BudgetExceeded>() || payload.is::<InjectedFault>() {
                return;
            }
            prev(info);
        }));
    });
}
/// Count of threads with an armed budget scope, gating `budget_tick`.
static BUDGET_ARMED: AtomicU64 = AtomicU64::new(0);

struct ArmedFault {
    plan: FaultPlan,
    seen: u64,
    fired: bool,
}

thread_local! {
    static PLAN: RefCell<Vec<ArmedFault>> = const { RefCell::new(Vec::new()) };
    static BUDGET: RefCell<Option<BudgetState>> = const { RefCell::new(None) };
}

#[inline]
pub(crate) fn injecting() -> bool {
    INJECTING.load(Ordering::Relaxed) != 0
}

/// Visit a probe site: fire the first armed, unfired fault whose site and
/// occurrence match. Called from `span` only while some scope is armed;
/// threads without a plan fall through untouched.
#[cold]
pub(crate) fn probe(name: &'static str) {
    let hit = PLAN.with(|p| {
        let mut plan = p.borrow_mut();
        for armed in plan.iter_mut() {
            if armed.plan.site != name || armed.fired {
                continue;
            }
            let occurrence = armed.seen;
            armed.seen += 1;
            if occurrence == armed.plan.nth {
                armed.fired = true;
                return Some(armed.plan);
            }
        }
        None
    });
    if let Some(plan) = hit {
        match plan.kind {
            InjectionKind::Panic | InjectionKind::Error => std::panic::panic_any(InjectedFault {
                site: plan.site,
                nth: plan.nth,
                kind: plan.kind,
            }),
            InjectionKind::Budget => std::panic::panic_any(BudgetExceeded {
                phase: plan.site,
                kind: BudgetKind::WallClock,
            }),
        }
    }
}

/// RAII guard arming a set of faults on the current thread. Dropping the
/// scope disarms them; [`InjectionScope::fired`] reports how many fired.
#[derive(Debug)]
pub struct InjectionScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl InjectionScope {
    pub fn arm(faults: Vec<FaultPlan>) -> InjectionScope {
        install_quiet_hook();
        PLAN.with(|p| {
            *p.borrow_mut() = faults
                .into_iter()
                .map(|plan| ArmedFault {
                    plan,
                    seen: 0,
                    fired: false,
                })
                .collect();
        });
        INJECTING.fetch_add(1, Ordering::Relaxed);
        InjectionScope {
            _not_send: std::marker::PhantomData,
        }
    }

    /// Number of armed faults that have fired so far in this scope.
    pub fn fired(&self) -> u64 {
        PLAN.with(|p| p.borrow().iter().filter(|a| a.fired).count() as u64)
    }
}

impl Drop for InjectionScope {
    fn drop(&mut self) {
        INJECTING.fetch_sub(1, Ordering::Relaxed);
        PLAN.with(|p| p.borrow_mut().clear());
    }
}

/// Caps enforced by an armed [`BudgetScope`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BudgetSpec {
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Cumulative cap across all `budget_tick` iterations in the scope.
    pub max_iters: Option<u64>,
}

struct BudgetState {
    spec: BudgetSpec,
    iters: u64,
}

/// Charge `n` iterations against the current thread's budget, panicking
/// with [`BudgetExceeded`] if a cap trips. Free (one relaxed load) when no
/// scope is armed; hot loops call this once per iteration.
#[inline]
pub fn budget_tick(phase: &'static str, n: u64) {
    if BUDGET_ARMED.load(Ordering::Relaxed) == 0 {
        return;
    }
    budget_tick_slow(phase, n);
}

#[cold]
fn budget_tick_slow(phase: &'static str, n: u64) {
    let tripped = BUDGET.with(|b| {
        let mut state = b.borrow_mut();
        let state = state.as_mut()?;
        state.iters += n;
        if state.spec.max_iters.is_some_and(|cap| state.iters > cap) {
            return Some(BudgetKind::Iterations);
        }
        if state.spec.deadline.is_some_and(|d| Instant::now() > d) {
            return Some(BudgetKind::WallClock);
        }
        None
    });
    if let Some(kind) = tripped {
        std::panic::panic_any(BudgetExceeded { phase, kind });
    }
}

/// RAII guard arming a cooperative budget on the current thread. Nested
/// scopes shadow the outer one and restore it on drop.
#[derive(Debug)]
pub struct BudgetScope {
    prev: Option<BudgetSpec>,
    prev_iters: u64,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl BudgetScope {
    pub fn arm(spec: BudgetSpec) -> BudgetScope {
        install_quiet_hook();
        let (prev, prev_iters) = BUDGET.with(|b| {
            let prev = b.borrow_mut().replace(BudgetState { spec, iters: 0 });
            match prev {
                Some(p) => (Some(p.spec), p.iters),
                None => (None, 0),
            }
        });
        BUDGET_ARMED.fetch_add(1, Ordering::Relaxed);
        BudgetScope {
            prev,
            prev_iters,
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        BUDGET_ARMED.fetch_sub(1, Ordering::Relaxed);
        let restored = self.prev.take().map(|spec| BudgetState {
            spec,
            iters: self.prev_iters,
        });
        BUDGET.with(|b| *b.borrow_mut() = restored);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_fires_on_nth_occurrence() {
        let scope = InjectionScope::arm(vec![FaultPlan {
            site: "unit_test_site",
            nth: 1,
            kind: InjectionKind::Error,
        }]);
        let _ = crate::span("unit_test_site"); // occurrence 0: no fire
        assert_eq!(scope.fired(), 0);
        let caught = std::panic::catch_unwind(|| {
            let _ = crate::span("unit_test_site"); // occurrence 1: fires
        });
        let payload = caught.unwrap_err();
        let fault = payload
            .downcast_ref::<InjectedFault>()
            .expect("typed payload");
        assert_eq!(fault.site, "unit_test_site");
        assert_eq!(fault.kind, InjectionKind::Error);
        assert_eq!(scope.fired(), 1);
        // Consume-once: the same site never fires again.
        let _ = crate::span("unit_test_site");
        assert_eq!(scope.fired(), 1);
        drop(scope);
        let _ = crate::span("unit_test_site");
    }

    #[test]
    fn injection_is_thread_local() {
        let _scope = InjectionScope::arm(vec![FaultPlan {
            site: "unit_test_other_thread",
            nth: 0,
            kind: InjectionKind::Panic,
        }]);
        // Another thread has no plan, so the armed site is inert there.
        spillopt_sync::thread::spawn(|| crate::span("unit_test_other_thread"))
            .join()
            .expect("no cross-thread injection");
    }

    #[test]
    fn budget_iteration_cap_trips() {
        let caught = std::panic::catch_unwind(|| {
            let _scope = BudgetScope::arm(BudgetSpec {
                deadline: None,
                max_iters: Some(3),
            });
            for _ in 0..10 {
                budget_tick("unit_test_loop", 1);
            }
        });
        let payload = caught.unwrap_err();
        let trip = payload
            .downcast_ref::<BudgetExceeded>()
            .expect("typed payload");
        assert_eq!(trip.phase, "unit_test_loop");
        assert_eq!(trip.kind, BudgetKind::Iterations);
        // Disarmed after the scope unwound.
        budget_tick("unit_test_loop", 1_000_000);
    }

    #[test]
    fn budget_deadline_trips() {
        let caught = std::panic::catch_unwind(|| {
            let _scope = BudgetScope::arm(BudgetSpec {
                deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
                max_iters: None,
            });
            budget_tick("unit_test_deadline", 1);
        });
        let trip = caught
            .unwrap_err()
            .downcast_ref::<BudgetExceeded>()
            .copied()
            .expect("typed payload");
        assert_eq!(trip.kind, BudgetKind::WallClock);
    }

    #[test]
    fn unarmed_ticks_are_free() {
        budget_tick("unit_test_idle", u64::MAX);
    }
}
