//! The eleven synthetic SPEC CPU2000 integer benchmark stand-ins.
//!
//! SPEC sources and inputs are not available here, so each benchmark is
//! replaced by a seeded generator tuned to the structural features the
//! paper identifies as driving its result:
//!
//! * `gcc` and `crafty` "utilize a number of unconditional jump
//!   instructions (gotos), which tend to increase the number of jump edges
//!   that can be exploited with the jump edge cost model" — high
//!   `goto_prob` and many cold regions;
//! * `mcf` has "relatively small procedures" where the allocator "is often
//!   able to perform a register allocation that uses only the caller-saved
//!   registers" — tiny budgets and low pressure;
//! * `gzip`, `bzip2`, `twolf` show shrink-wrapping *worse* than entry/exit
//!   (ratios > 100% in Table 1) — hot, always-executed busy regions whose
//!   wrap boundaries outweigh procedure entry/exit;
//! * the rest sit between those poles.
//!
//! The placement algorithms only observe CFG shape + busy blocks +
//! profile, so matching those distributions preserves the comparison the
//! paper makes even though the absolute instruction counts differ.

use crate::emit::{emit_function, EmitConfig, Style};
use crate::shape::{gen_body, ShapeConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spillopt_ir::{FuncId, Module, Target};

/// Generator parameters for one synthetic benchmark.
#[derive(Clone, Debug)]
pub struct BenchSpec {
    /// Benchmark name (the SPEC program it stands in for).
    pub name: &'static str,
    /// Master seed.
    pub seed: u64,
    /// Number of functions in the module.
    pub num_funcs: usize,
    /// Leading functions that make no calls.
    pub num_leaves: usize,
    /// Statement budget range per function.
    pub budget: (usize, usize),
    /// Accumulator (register pressure) range per function.
    pub pressure: (usize, usize),
    /// Probability of a call per statement slot (non-leaf functions).
    pub call_prob: f64,
    /// Probability that a compound statement is a loop.
    pub loop_prob: f64,
    /// Loop trip count range.
    pub loop_trip: (u64, u64),
    /// Probability of a goto escape per statement slot.
    pub goto_prob: f64,
    /// Probability that an `if` is cold.
    pub cold_if_prob: f64,
    /// Probability that an `if` has an else arm.
    pub else_prob: f64,
    /// Maximum nesting depth.
    pub max_depth: usize,
    /// Data slots per function.
    pub data_slots: usize,
    /// Distinct sample inputs per entry function (half train, half ref).
    pub inputs_per_entry: usize,
    /// Fraction of functions generated memory-homed (localized
    /// callee-saved busy regions; see [`Style`]).
    pub mem_frac: f64,
    /// Cold shared handler blocks per function (range).
    pub handlers: (usize, usize),
    /// Probability that a goto targets a handler.
    pub handler_goto_frac: f64,
    /// Hot mainline call segments per memory-homed function (range).
    pub hot_segments: (usize, usize),
    /// Probability that an ordinary memory-style call keeps a local live
    /// across it.
    pub crossing_frac: f64,
    /// Crossing probability inside cold arms.
    pub cold_crossing: f64,
    /// Function-flavor weights `(register, cold, warm-segments, handler)`.
    ///
    /// Each function draws one flavor:
    /// * **register** — register-homed accumulators; callee-saved busy
    ///   everywhere; all techniques ≈ entry/exit;
    /// * **cold** — memory-homed with crossing locals in cold arms;
    ///   rewards profile-guided placement (and, when boundaries are
    ///   clean, shrink-wrapping);
    /// * **warm-segments** — several near-always-taken arms each with a
    ///   crossing call; shrink-wrapping pays per segment where entry/exit
    ///   pays once (ratios above 100%);
    /// * **handler** — cold shared blocks reached through critical jump
    ///   edges; only the jump-edge cost model can place spill code there
    ///   (Chow's artificial flow hoists into warm code).
    pub flavor_weights: (f64, f64, f64, f64),
    /// Workload multiplier applied when reporting absolute dynamic counts
    /// (Figure 5); ratios are unaffected.
    pub scale: u64,
}

/// A generated benchmark: the module plus its train/ref workloads.
#[derive(Clone, Debug)]
pub struct GeneratedBench {
    /// Benchmark name.
    pub name: String,
    /// The module (virtual registers; run the allocator before placement).
    pub module: Module,
    /// Profiling workload (function, arguments) — the paper's "train".
    pub train_runs: Vec<(FuncId, Vec<i64>)>,
    /// Measurement workload — the paper's "ref".
    pub ref_runs: Vec<(FuncId, Vec<i64>)>,
    /// Reporting multiplier for absolute counts.
    pub scale: u64,
}

/// Builds a benchmark module from its spec.
/// A function's flavor (see [`BenchSpec::flavor_weights`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Flavor {
    Register,
    CleanCold,
    WarmSegments,
    Handler,
}

/// Deterministic flavor schedule: functions are assigned flavors so that
/// running counts track the weight proportions (greedy largest-deficit).
/// The schedule is stable under small weight changes — adjusting one
/// weight converts a few functions instead of reshuffling the module —
/// which is what makes the per-benchmark calibration convergent.
fn flavor_quota(weights: (f64, f64, f64, f64), n: usize) -> Vec<Flavor> {
    let w = [weights.0, weights.1, weights.2, weights.3];
    let total: f64 = w.iter().sum::<f64>().max(1e-9);
    let flavors = [
        Flavor::Register,
        Flavor::CleanCold,
        Flavor::WarmSegments,
        Flavor::Handler,
    ];
    let mut used = [0usize; 4];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut best = 0;
        let mut best_deficit = f64::MIN;
        for f in 0..4 {
            let target = w[f] / total * (i + 1) as f64;
            let deficit = target - used[f] as f64;
            if deficit > best_deficit {
                best_deficit = deficit;
                best = f;
            }
        }
        used[best] += 1;
        out.push(flavors[best]);
    }
    out
}

/// Parameters every generated benchmark function takes. Targets must
/// provide at least this many argument registers to lower a benchmark
/// ([`build_bench`] panics otherwise — callers with user-supplied
/// targets should check first).
pub const BENCH_NUM_PARAMS: usize = 2;

/// Builds a benchmark module from its spec.
pub fn build_bench(spec: &BenchSpec, target: &Target) -> GeneratedBench {
    let mut module = Module::new(spec.name);
    let flavors = flavor_quota(spec.flavor_weights, spec.num_funcs);

    for (i, &flavor) in flavors.iter().enumerate().take(spec.num_funcs) {
        // Per-function generator state: changing one function's parameters
        // (e.g. its flavor) leaves all others bit-identical.
        let mut rng =
            SmallRng::seed_from_u64(spec.seed ^ (i as u64).wrapping_mul(0x9e37_79b9) ^ 17);
        let is_leaf = i < spec.num_leaves;
        let shape = ShapeConfig {
            budget: rng.gen_range(spec.budget.0..=spec.budget.1),
            loop_prob: spec.loop_prob,
            else_prob: spec.else_prob,
            cold_if_prob: spec.cold_if_prob,
            goto_prob: spec.goto_prob,
            call_prob: if is_leaf { 0.0 } else { spec.call_prob },
            loop_trip: spec.loop_trip,
            max_depth: spec.max_depth,
        };
        let (style, num_handlers, hot_segment_calls, crossing_frac, cold_crossing, cold_sites) =
            match flavor {
                Flavor::Register => (Style::Register, 0, 0, 0.0, 0.0, 0),
                Flavor::CleanCold => (
                    Style::Memory,
                    0,
                    0,
                    spec.crossing_frac,
                    spec.cold_crossing,
                    rng.gen_range(2..=3),
                ),
                Flavor::WarmSegments => {
                    let segs =
                        rng.gen_range(spec.hot_segments.0.max(2)..=spec.hot_segments.1.max(2));
                    (Style::Memory, 0, segs, 0.0, 0.0, 0)
                }
                Flavor::Handler => {
                    let hs = rng.gen_range(spec.handlers.0.max(1)..=spec.handlers.1.max(1));
                    (Style::Memory, hs, 0, 0.0, spec.cold_crossing, 0)
                }
            };
        let emit_cfg = EmitConfig {
            shape: shape.clone(),
            pressure: rng.gen_range(spec.pressure.0..=spec.pressure.1),
            num_params: BENCH_NUM_PARAMS,
            data_slots: spec.data_slots,
            style,
            num_handlers,
            handler_goto_frac: spec.handler_goto_frac,
            hot_segment_calls,
            crossing_frac,
            cold_crossing,
            cold_sites,
        };
        let mut body_rng = SmallRng::seed_from_u64(spec.seed ^ (0x9e37 + i as u64 * 0x1337));
        let body = gen_body(&shape, &mut body_rng, i);
        let func = emit_function(
            &format!("{}_f{i:02}", spec.name),
            target,
            &emit_cfg,
            &body,
            0,
            spec.seed ^ (i as u64).wrapping_mul(0xdead_beef_cafe),
        );
        module.add_func(func);
    }

    // Every function is an entry point, so each procedure contributes
    // comparably to the module totals (the paper aggregates per-procedure
    // overhead over whole benchmark runs the same way).
    let mut train_runs = Vec::new();
    let mut ref_runs = Vec::new();
    for i in 0..spec.num_funcs {
        let mut rng =
            SmallRng::seed_from_u64(spec.seed ^ (i as u64).wrapping_mul(0x517c_c1b7) ^ 99);
        let f = FuncId::from_index(i);
        for k in 0..spec.inputs_per_entry {
            let args = vec![rng.gen_range(0..1i64 << 24), rng.gen_range(0..1i64 << 24)];
            if k % 2 == 0 {
                train_runs.push((f, args));
            } else {
                ref_runs.push((f, args));
            }
        }
    }

    GeneratedBench {
        name: spec.name.to_string(),
        module,
        train_runs,
        ref_runs,
        scale: spec.scale,
    }
}

/// The eleven SPEC CPU2000 integer stand-ins evaluated by the paper (the
/// C++ benchmark `eon` was excluded there too).
pub fn all_benchmarks() -> Vec<BenchSpec> {
    let base = BenchSpec {
        name: "",
        seed: 0,
        num_funcs: 16,
        num_leaves: 4,
        budget: (25, 55),
        pressure: (5, 8),
        call_prob: 0.10,
        loop_prob: 0.35,
        loop_trip: (3, 12),
        goto_prob: 0.06,
        cold_if_prob: 0.25,
        else_prob: 0.5,
        max_depth: 4,
        data_slots: 4,
        inputs_per_entry: 6,
        mem_frac: 0.5,
        handlers: (0, 1),
        handler_goto_frac: 0.6,
        hot_segments: (0, 1),
        crossing_frac: 0.0,
        cold_crossing: 0.7,
        flavor_weights: (0.5, 0.3, 0.1, 0.1),
        scale: 1_000,
    };
    vec![
        // Hot compression kernels: busy regions on the always-taken path,
        // shrink-wrapping slightly counterproductive.
        BenchSpec {
            name: "gzip",
            seed: 0x675a_3970,
            num_funcs: 12,
            budget: (30, 60),
            pressure: (6, 9),
            call_prob: 0.2,
            loop_prob: 0.45,
            loop_trip: (4, 16),
            goto_prob: 0.05,
            cold_if_prob: 0.3,
            mem_frac: 0.8,
            handlers: (1, 1),
            hot_segments: (2, 2),
            crossing_frac: 0.0,
            handler_goto_frac: 0.6,
            cold_crossing: 0.7,
            flavor_weights: (0.36, 0.0, 0.60, 0.04),
            ..base.clone()
        },
        BenchSpec {
            name: "vpr",
            seed: 0x7670_7200,
            num_funcs: 14,
            budget: (22, 45),
            pressure: (4, 6),
            call_prob: 0.08,
            cold_if_prob: 0.20,
            goto_prob: 0.04,
            mem_frac: 0.1,
            handlers: (0, 0),
            hot_segments: (2, 2),
            crossing_frac: 0.0,
            cold_crossing: 0.5,
            flavor_weights: (0.96, 0.0, 0.04, 0.0),
            ..base.clone()
        },
        // Huge, goto-rich, many cold regions: the paper's biggest winner.
        BenchSpec {
            name: "gcc",
            seed: 0x6763_6300,
            num_funcs: 36,
            num_leaves: 8,
            budget: (40, 90),
            pressure: (7, 10),
            call_prob: 0.12,
            goto_prob: 0.16,
            cold_if_prob: 0.45,
            max_depth: 5,
            mem_frac: 0.97,
            handlers: (2, 3),
            handler_goto_frac: 0.8,
            hot_segments: (2, 2),
            crossing_frac: 0.0,
            cold_crossing: 0.8,
            flavor_weights: (0.0, 0.34, 0.0, 0.66),
            ..base.clone()
        },
        // Tiny procedures, low pressure: no callee-saved use at all.
        BenchSpec {
            name: "mcf",
            seed: 0x6d63_6600,
            num_funcs: 8,
            num_leaves: 3,
            budget: (8, 16),
            pressure: (2, 3),
            call_prob: 0.05,
            loop_prob: 0.40,
            loop_trip: (2, 8),
            goto_prob: 0.02,
            mem_frac: 0.2,
            handlers: (0, 0),
            hot_segments: (0, 0),
            crossing_frac: 0.0,
            cold_crossing: 0.5,
            flavor_weights: (1.0, 0.0, 0.0, 0.0),
            ..base.clone()
        },
        BenchSpec {
            name: "crafty",
            seed: 0x6372_6166,
            num_funcs: 18,
            num_leaves: 4,
            budget: (50, 90),
            pressure: (8, 10),
            call_prob: 0.10,
            goto_prob: 0.20,
            cold_if_prob: 0.50,
            max_depth: 5,
            mem_frac: 0.95,
            handlers: (2, 3),
            handler_goto_frac: 0.8,
            hot_segments: (2, 2),
            crossing_frac: 0.0,
            cold_crossing: 0.8,
            flavor_weights: (0.00, 0.36, 0.00, 0.64),
            ..base.clone()
        },
        BenchSpec {
            name: "parser",
            seed: 0x7061_7273,
            num_funcs: 22,
            num_leaves: 6,
            budget: (25, 50),
            pressure: (5, 8),
            goto_prob: 0.09,
            cold_if_prob: 0.30,
            mem_frac: 0.7,
            handlers: (0, 1),
            hot_segments: (2, 2),
            crossing_frac: 0.0,
            cold_crossing: 0.6,
            flavor_weights: (0.58, 0.16, 0.04, 0.22),
            ..base.clone()
        },
        BenchSpec {
            name: "perlbmk",
            seed: 0x7065_726c,
            num_funcs: 28,
            num_leaves: 7,
            budget: (30, 60),
            pressure: (5, 8),
            goto_prob: 0.07,
            cold_if_prob: 0.26,
            mem_frac: 0.5,
            handlers: (0, 1),
            hot_segments: (2, 2),
            crossing_frac: 0.0,
            cold_crossing: 0.6,
            flavor_weights: (0.68, 0.16, 0.04, 0.12),
            ..base.clone()
        },
        BenchSpec {
            name: "gap",
            seed: 0x6761_7000,
            num_funcs: 24,
            num_leaves: 6,
            budget: (30, 60),
            pressure: (6, 8),
            goto_prob: 0.08,
            cold_if_prob: 0.35,
            mem_frac: 0.6,
            handlers: (0, 0),
            hot_segments: (2, 2),
            crossing_frac: 0.0,
            cold_crossing: 0.6,
            flavor_weights: (0.68, 0.28, 0.04, 0.00),
            ..base.clone()
        },
        BenchSpec {
            name: "vortex",
            seed: 0x766f_7274,
            num_funcs: 22,
            num_leaves: 5,
            budget: (28, 55),
            pressure: (4, 6),
            call_prob: 0.14,
            cold_if_prob: 0.15,
            goto_prob: 0.04,
            mem_frac: 0.12,
            handlers: (0, 0),
            hot_segments: (2, 2),
            crossing_frac: 0.0,
            cold_crossing: 0.3,
            flavor_weights: (0.94, 0.0, 0.06, 0.0),
            ..base.clone()
        },
        BenchSpec {
            name: "bzip2",
            seed: 0x627a_6970,
            num_funcs: 10,
            budget: (30, 60),
            pressure: (6, 9),
            loop_prob: 0.50,
            loop_trip: (4, 16),
            goto_prob: 0.03,
            cold_if_prob: 0.3,
            call_prob: 0.25,
            mem_frac: 0.7,
            handlers: (0, 1),
            hot_segments: (2, 2),
            crossing_frac: 0.0,
            cold_crossing: 0.8,
            flavor_weights: (0.68, 0.04, 0.0, 0.28),
            ..base.clone()
        },
        BenchSpec {
            name: "twolf",
            seed: 0x7477_6f6c,
            num_funcs: 16,
            budget: (35, 70),
            pressure: (7, 9),
            loop_prob: 0.50,
            loop_trip: (3, 14),
            goto_prob: 0.03,
            cold_if_prob: 0.2,
            call_prob: 0.13,
            mem_frac: 0.75,
            handlers: (0, 1),
            hot_segments: (2, 2),
            crossing_frac: 0.0,
            cold_crossing: 0.5,
            flavor_weights: (0.66, 0.10, 0.12, 0.12),
            ..base.clone()
        },
    ]
}

/// Looks a spec up by name.
pub fn benchmark_by_name(name: &str) -> Option<BenchSpec> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{verify_module, RegDiscipline};

    #[test]
    fn there_are_eleven_benchmarks() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 11);
        let names: Vec<_> = all.iter().map(|b| b.name).collect();
        for n in [
            "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "perlbmk", "gap", "vortex", "bzip2",
            "twolf",
        ] {
            assert!(names.contains(&n), "missing {n}");
        }
        assert!(benchmark_by_name("gzip").is_some());
        assert!(benchmark_by_name("eon").is_none());
    }

    #[test]
    fn benchmarks_generate_valid_modules() {
        let target = Target::default();
        for spec in all_benchmarks() {
            let bench = build_bench(&spec, &target);
            let errs = verify_module(&bench.module, RegDiscipline::Virtual);
            assert!(errs.is_empty(), "{}: {errs:?}", spec.name);
            assert!(!bench.train_runs.is_empty());
            assert!(!bench.ref_runs.is_empty());
            assert_eq!(bench.module.num_funcs(), spec.num_funcs);
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let target = Target::default();
        let spec = benchmark_by_name("gzip").unwrap();
        let a = build_bench(&spec, &target);
        let b = build_bench(&spec, &target);
        assert_eq!(a.module.num_insts(), b.module.num_insts());
        assert_eq!(a.train_runs, b.train_runs);
    }

    #[test]
    fn mcf_is_small() {
        let target = Target::default();
        let mcf = build_bench(&benchmark_by_name("mcf").unwrap(), &target);
        let gcc = build_bench(&benchmark_by_name("gcc").unwrap(), &target);
        assert!(mcf.module.num_insts() * 4 < gcc.module.num_insts());
    }
}
