//! # spillopt-benchgen
//!
//! Synthetic SPEC CPU2000 integer benchmark stand-ins for the *spillopt*
//! reproduction of Lupo & Wilken (CGO 2006).
//!
//! The paper evaluates on the eleven C programs of SPEC CPU2000 int;
//! those sources and inputs are not available here, so [`spec`] defines a
//! seeded generator per benchmark tuned to the structural features the
//! paper says drive each program's result (goto density, procedure size,
//! register pressure, loop structure, branch coldness). [`shape`] draws
//! statement skeletons, [`emit`] lowers them to executable IR with the
//! right fall-through/jump edge texture.
//!
//! # Examples
//!
//! ```
//! use spillopt_benchgen::{benchmark_by_name, build_bench};
//! use spillopt_ir::Target;
//!
//! let spec = benchmark_by_name("mcf").unwrap();
//! let bench = build_bench(&spec, &Target::default());
//! assert_eq!(bench.module.num_funcs(), spec.num_funcs);
//! assert!(!bench.train_runs.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod emit;
pub mod shape;
pub mod spec;

pub use emit::{emit_function, EmitConfig, Style};
pub use shape::{gen_body, Hotness, ShapeConfig, Stmt};
pub use spec::{
    all_benchmarks, benchmark_by_name, build_bench, BenchSpec, GeneratedBench, BENCH_NUM_PARAMS,
};
