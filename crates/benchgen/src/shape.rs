//! Structured program skeletons (ASTs) for the synthetic benchmarks.
//!
//! The generator first draws a statement tree — straight-line arithmetic,
//! calls, `if`/`if-else` with controlled branch probabilities, counted
//! loops, and forward "goto" escapes — and a separate emitter lowers it to
//! IR. The tree form makes every generated CFG reducible and terminating
//! by construction while still producing the features the paper's
//! evaluation turns on: cold regions behind critical jump edges
//! (gcc/crafty's gotos), hot disjoint busy regions (gzip/bzip2/twolf), and
//! call-crossing values that force callee-saved register use.

use rand::rngs::SmallRng;
use rand::Rng;

/// How often a conditional's *then* side executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Hotness {
    /// ~15/16 of executions.
    Hot,
    /// ~1/2 of executions.
    Balanced,
    /// ~1/16 of executions.
    Cold,
    /// ~1/64 of executions.
    VeryCold,
}

impl Hotness {
    /// The `(mask, threshold)` pair realizing the probability: the branch
    /// computes `t = acc & mask` and takes the *then* side when
    /// `t < threshold`.
    pub fn mask_threshold(self) -> (i64, i64) {
        match self {
            Hotness::Hot => (15, 14),
            Hotness::Balanced => (15, 8),
            Hotness::Cold => (15, 1),
            Hotness::VeryCold => (63, 1),
        }
    }
}

/// One statement of the skeleton.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `count` arithmetic/memory operations over the accumulators.
    Ops {
        /// Number of operations.
        count: usize,
    },
    /// A call; `target` is a lower-indexed module function, or `None` for
    /// an opaque external call.
    Call {
        /// Callee (module function index), or external.
        target: Option<usize>,
    },
    /// A conditional.
    If {
        /// Probability class of the *then* side.
        hot: Hotness,
        /// Then-side statements.
        then_body: Vec<Stmt>,
        /// Else-side statements (`None` = plain `if`, which lowers to a
        /// critical jump edge into the join when taken).
        else_body: Option<Vec<Stmt>>,
    },
    /// A counted loop.
    Loop {
        /// Trip count.
        trip: u64,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// A conditional forward escape (a `goto`) to the nearest enclosing
    /// loop exit (or, at top level, the function epilogue); lowers to a
    /// critical jump edge.
    Goto {
        /// Probability class of actually escaping.
        hot: Hotness,
    },
}

/// Structure-shape parameters for one function.
#[derive(Clone, Debug)]
pub struct ShapeConfig {
    /// Statement budget (roughly proportional to block count).
    pub budget: usize,
    /// Probability that a compound statement is a loop.
    pub loop_prob: f64,
    /// Probability that an `if` has an else side.
    pub else_prob: f64,
    /// Probability that an `if` is cold (vs. balanced/hot).
    pub cold_if_prob: f64,
    /// Probability of a goto escape per statement slot.
    pub goto_prob: f64,
    /// Probability of a call per statement slot.
    pub call_prob: f64,
    /// Loop trip count range (inclusive).
    pub loop_trip: (u64, u64),
    /// Maximum nesting depth.
    pub max_depth: usize,
}

/// Draws a statement list consuming the configured budget.
pub fn gen_body(cfg: &ShapeConfig, rng: &mut SmallRng, num_funcs_below: usize) -> Vec<Stmt> {
    let mut budget = cfg.budget;
    gen_stmts(cfg, rng, num_funcs_below, &mut budget, 0, true)
}

fn gen_stmts(
    cfg: &ShapeConfig,
    rng: &mut SmallRng,
    callees: usize,
    budget: &mut usize,
    depth: usize,
    allow_goto: bool,
) -> Vec<Stmt> {
    let mut out = Vec::new();
    // Every body starts with a little straight-line work.
    out.push(Stmt::Ops {
        count: rng.gen_range(1..4),
    });
    while *budget > 0 {
        *budget = budget.saturating_sub(1);
        let r: f64 = rng.gen();
        if r < cfg.call_prob && callees > 0 {
            let internal = rng.gen_bool(0.6);
            out.push(Stmt::Call {
                target: if internal {
                    Some(rng.gen_range(0..callees))
                } else {
                    None
                },
            });
        } else if r < cfg.call_prob + cfg.goto_prob && allow_goto {
            out.push(Stmt::Goto {
                hot: if rng.gen_bool(0.5) {
                    Hotness::Cold
                } else {
                    Hotness::VeryCold
                },
            });
        } else if r < cfg.call_prob + cfg.goto_prob + 0.35 && depth < cfg.max_depth && *budget > 2 {
            // Compound statement.
            if rng.gen_bool(cfg.loop_prob) {
                let mut trip = rng.gen_range(cfg.loop_trip.0..=cfg.loop_trip.1);
                // Keep nested trip products bounded. The floor follows the
                // configured lower bound, so configs with `loop_trip.0 == 0`
                // (the stress generator) keep their zero-trip loops.
                trip = (trip >> depth).max(cfg.loop_trip.0.min(2));
                let mut inner = (*budget / 2).max(1);
                *budget = budget.saturating_sub(inner);
                let body = gen_stmts(cfg, rng, callees, &mut inner, depth + 1, true);
                // ...and prevent multiplicative blow-up through call
                // chains: a loop that calls other functions iterates
                // only a few times.
                if contains_call(&body) {
                    trip = trip.min(3);
                }
                out.push(Stmt::Loop { trip, body });
            } else {
                let hot = if rng.gen_bool(cfg.cold_if_prob) {
                    if rng.gen_bool(0.5) {
                        Hotness::Cold
                    } else {
                        Hotness::VeryCold
                    }
                } else if rng.gen_bool(0.5) {
                    Hotness::Balanced
                } else {
                    Hotness::Hot
                };
                let mut inner = (*budget / 2).max(1);
                *budget = budget.saturating_sub(inner);
                let then_body = gen_stmts(cfg, rng, callees, &mut inner, depth + 1, allow_goto);
                let else_body = if rng.gen_bool(cfg.else_prob) && *budget > 1 {
                    let mut einner = (*budget / 2).max(1);
                    *budget = budget.saturating_sub(einner);
                    Some(gen_stmts(
                        cfg,
                        rng,
                        callees,
                        &mut einner,
                        depth + 1,
                        allow_goto,
                    ))
                } else {
                    None
                };
                out.push(Stmt::If {
                    hot,
                    then_body,
                    else_body,
                });
            }
        } else {
            out.push(Stmt::Ops {
                count: rng.gen_range(1..5),
            });
        }
        // Occasionally stop early for size variety.
        if rng.gen_bool(0.08) {
            break;
        }
    }
    out
}

/// Returns `true` if any statement (recursively) is a call.
pub fn contains_call(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Call { .. } => true,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => contains_call(then_body) || else_body.as_ref().is_some_and(|e| contains_call(e)),
        Stmt::Loop { body, .. } => contains_call(body),
        _ => false,
    })
}

/// Counts statements (for tests).
pub fn stmt_count(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => 1 + stmt_count(then_body) + else_body.as_ref().map_or(0, |e| stmt_count(e)),
            Stmt::Loop { body, .. } => 1 + stmt_count(body),
            _ => 1,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn config() -> ShapeConfig {
        ShapeConfig {
            budget: 30,
            loop_prob: 0.4,
            else_prob: 0.5,
            cold_if_prob: 0.3,
            goto_prob: 0.1,
            call_prob: 0.15,
            loop_trip: (2, 10),
            max_depth: 4,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_body(&config(), &mut SmallRng::seed_from_u64(7), 3);
        let b = gen_body(&config(), &mut SmallRng::seed_from_u64(7), 3);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = gen_body(&config(), &mut SmallRng::seed_from_u64(8), 3);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn respects_budget_roughly() {
        let body = gen_body(&config(), &mut SmallRng::seed_from_u64(1), 3);
        let n = stmt_count(&body);
        assert!(n >= 2, "too small: {n}");
        assert!(n <= 200, "too large: {n}");
    }

    #[test]
    fn hotness_probabilities_make_sense() {
        for h in [
            Hotness::Hot,
            Hotness::Balanced,
            Hotness::Cold,
            Hotness::VeryCold,
        ] {
            let (mask, thr) = h.mask_threshold();
            assert!(thr <= mask + 1);
            assert!(thr >= 1);
            assert!(
                mask > 0 && (mask + 1) & mask == 0,
                "mask+1 must be a power of 2"
            );
        }
    }
}
