//! Lowering statement skeletons to IR functions.
//!
//! The emitter controls the block layout explicitly so that every
//! conditional's fall-through target is its layout successor, plain `if`s
//! and `goto` escapes produce critical jump edges, and loop bodies fall
//! through naturally — the exact edge-kind texture the paper's jump-edge
//! cost model cares about.

use crate::shape::{ShapeConfig, Stmt};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spillopt_ir::{
    BinOp, BlockId, Callee, Cond, FuncId, Function, FunctionBuilder, InstKind, Reg, Target, VReg,
};

/// How a function homes its working state.
///
/// The distinction decides where callee-saved pressure comes from and is
/// the main lever behind the per-benchmark result shapes:
///
/// * `Register` functions keep accumulators in registers for their whole
///   body; any call makes them call-crossing, so the allocator parks them
///   in callee-saved registers that are busy *everywhere* — entry/exit
///   placement is already optimal for such functions;
/// * `Memory` functions keep state in frame slots and materialize values
///   in short-lived temporaries; only deliberate locals around call sites
///   cross calls, so callee-saved busy regions are *localized* — cold
///   ones reward the hierarchical algorithm, hot disjoint ones punish
///   shrink-wrapping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Style {
    /// Register-homed accumulators.
    Register,
    /// Memory-homed state with short-lived temporaries.
    Memory,
}

/// Parameters for emitting one function.
#[derive(Clone, Debug)]
pub struct EmitConfig {
    /// Shape of the statement tree.
    pub shape: ShapeConfig,
    /// Number of long-lived accumulator values (register pressure).
    pub pressure: usize,
    /// Number of parameters (≤ the target's argument registers).
    pub num_params: usize,
    /// Data frame slots for program loads/stores.
    pub data_slots: usize,
    /// Value-homing style.
    pub style: Style,
    /// Cold shared handler blocks (targets of gotos; their call-crossing
    /// locals become cold busy regions behind critical jump edges — the
    /// gcc/crafty pattern).
    pub num_handlers: usize,
    /// Probability that a goto escapes to a handler rather than a loop
    /// exit.
    pub handler_goto_frac: f64,
    /// Always-executed mainline call segments with call-crossing locals
    /// in separate blocks (hot disjoint busy regions — the
    /// gzip/bzip2/twolf pattern that makes shrink-wrapping lose to
    /// entry/exit). Only meaningful for `Style::Memory`.
    pub hot_segment_calls: usize,
    /// Probability that an ordinary call in a memory-homed function keeps
    /// a local live across it (creating a busy region wherever the call
    /// sits). Hot-segment and handler calls always do.
    pub crossing_frac: f64,
    /// Crossing probability for calls inside *cold* arms (cold busy
    /// regions are where the profile-guided placement wins).
    pub cold_crossing: f64,
    /// Guaranteed very-cold arms with a crossing call, appended to the
    /// mainline. Their boundaries are clean (non-critical), so *both*
    /// shrink-wrapping and the hierarchical algorithm place spill code
    /// there — the pattern behind the paper's below-100% shrink-wrap
    /// ratios.
    pub cold_sites: usize,
}

struct Emitter {
    fb: FunctionBuilder,
    layout: Vec<BlockId>,
    style: Style,
    /// Register-homed accumulators (`Style::Register`).
    accs: Vec<VReg>,
    /// Memory-homed accumulators (`Style::Memory`).
    acc_slots: Vec<spillopt_ir::FrameSlot>,
    data_slots: Vec<spillopt_ir::FrameSlot>,
    escapes: Vec<BlockId>,
    handlers: Vec<BlockId>,
    handler_goto_frac: f64,
    crossing_frac: f64,
    cold_crossing: f64,
    cold_depth: usize,
    epilogue: BlockId,
    rng: SmallRng,
    callee_base: usize,
    num_accs: usize,
}

impl Emitter {
    fn open(&mut self, b: BlockId) {
        self.fb.switch_to(b);
        self.layout.push(b);
    }

    fn acc(&mut self) -> usize {
        self.rng.gen_range(0..self.num_accs)
    }

    /// Starts a fresh block reached by falling through from the current
    /// one (splits busy clusters without adding edges of interest).
    fn break_block(&mut self) {
        let b = self.fb.create_block(None);
        self.open(b);
    }

    /// Materializes accumulator `i` into a register (a load in memory
    /// style; the long-lived register itself otherwise).
    fn read_acc(&mut self, i: usize) -> VReg {
        match self.style {
            Style::Register => self.accs[i],
            Style::Memory => {
                let t = self.fb.new_vreg();
                self.fb.emit(InstKind::Load {
                    dst: Reg::Virt(t),
                    slot: self.acc_slots[i],
                    kind: spillopt_ir::MemKind::Data,
                });
                t
            }
        }
    }

    /// The register to compute accumulator `i`'s new value into.
    fn acc_dst(&mut self, i: usize) -> VReg {
        match self.style {
            Style::Register => self.accs[i],
            Style::Memory => self.fb.new_vreg(),
        }
    }

    /// Completes an accumulator update (a store-back in memory style).
    fn write_acc(&mut self, i: usize, v: VReg) {
        if self.style == Style::Memory {
            self.fb.emit(InstKind::Store {
                src: Reg::Virt(v),
                slot: self.acc_slots[i],
                kind: spillopt_ir::MemKind::Data,
            });
        }
        let _ = i;
    }

    /// One random arithmetic or data-memory operation over accumulators.
    fn emit_op(&mut self) {
        let i = self.acc();
        let j = self.acc();
        let a = self.read_acc(i);
        let b = self.read_acc(j);
        let d = self.acc_dst(i);
        let dst = Reg::Virt(d);
        let lhs_in = Reg::Virt(a);
        let src = Reg::Virt(b);
        match self.rng.gen_range(0..8) {
            0 => self.fb.emit(InstKind::Bin {
                op: BinOp::Add,
                dst,
                lhs: lhs_in,
                rhs: src,
            }),
            1 => self.fb.emit(InstKind::Bin {
                op: BinOp::Xor,
                dst,
                lhs: lhs_in,
                rhs: src,
            }),
            2 => self.fb.emit(InstKind::Bin {
                op: BinOp::Sub,
                dst,
                lhs: src,
                rhs: lhs_in,
            }),
            3 => {
                let k = self.rng.gen_range(1..64);
                self.fb.emit(InstKind::BinImm {
                    op: BinOp::Mul,
                    dst,
                    lhs: lhs_in,
                    imm: 2 * k + 1,
                });
            }
            4 => {
                let k = self.rng.gen_range(1..30);
                self.fb.emit(InstKind::BinImm {
                    op: BinOp::Add,
                    dst,
                    lhs: lhs_in,
                    imm: k,
                });
            }
            5 => {
                // LCG-style mix keeps branch conditions lively.
                self.fb.emit(InstKind::BinImm {
                    op: BinOp::Mul,
                    dst,
                    lhs: lhs_in,
                    imm: 6364136223846793005u64 as i64,
                });
                self.fb.emit(InstKind::BinImm {
                    op: BinOp::Add,
                    dst,
                    lhs: dst,
                    imm: 1442695040888963407u64 as i64,
                });
                // Keep magnitudes useful for masking.
                self.fb.emit(InstKind::BinImm {
                    op: BinOp::Shr,
                    dst,
                    lhs: dst,
                    imm: 11,
                });
            }
            6 if !self.data_slots.is_empty() => {
                let s = self.data_slots[self.rng.gen_range(0..self.data_slots.len())];
                self.fb.emit(InstKind::Store {
                    src: lhs_in,
                    slot: s,
                    kind: spillopt_ir::MemKind::Data,
                });
                // Keep the destination defined for the store-back.
                self.fb.emit(InstKind::BinImm {
                    op: BinOp::Add,
                    dst,
                    lhs: lhs_in,
                    imm: 0,
                });
            }
            _ if !self.data_slots.is_empty() => {
                let s = self.data_slots[self.rng.gen_range(0..self.data_slots.len())];
                let t = self.fb.new_vreg();
                self.fb.emit(InstKind::Load {
                    dst: Reg::Virt(t),
                    slot: s,
                    kind: spillopt_ir::MemKind::Data,
                });
                self.fb.emit(InstKind::Bin {
                    op: BinOp::Xor,
                    dst,
                    lhs: lhs_in,
                    rhs: Reg::Virt(t),
                });
            }
            _ => self.fb.emit(InstKind::BinImm {
                op: BinOp::Add,
                dst,
                lhs: lhs_in,
                imm: 1,
            }),
        }
        self.write_acc(i, d);
    }

    /// Computes a branch condition register: `t = acc[i] & mask`.
    fn cond_temp(&mut self, mask: i64) -> VReg {
        let i = self.acc();
        let a = self.read_acc(i);
        let t = self.fb.new_vreg();
        self.fb.emit(InstKind::BinImm {
            op: BinOp::And,
            dst: Reg::Virt(t),
            lhs: Reg::Virt(a),
            imm: mask,
        });
        t
    }

    /// A call with a deliberately call-crossing local (memory style): the
    /// local is loaded before the call and folded with the result after,
    /// so exactly one value spans the call site — a *localized*
    /// callee-saved busy region.
    fn emit_mem_call(&mut self, target: Option<usize>, force_crossing: bool) {
        debug_assert_eq!(self.style, Style::Memory);
        let i = self.acc();
        let j = self.acc();
        let k = self.acc();
        let a = self.read_acc(i);
        let b = self.read_acc(j);
        let p = if self.cold_depth > 0 {
            self.cold_crossing
        } else {
            self.crossing_frac
        };
        let crossing = if force_crossing || self.rng.gen_bool(p) {
            // Load *before* the call: exactly one value spans the call.
            Some(self.read_acc(k))
        } else {
            None
        };
        let callee = match target {
            Some(t) => Callee::Func(FuncId::from_index(self.callee_base + t)),
            None => Callee::External(self.rng.gen_range(0..8)),
        };
        let r = self.fb.call(callee, &[Reg::Virt(a), Reg::Virt(b)]);
        let d = self.acc_dst(k);
        let other = match crossing {
            Some(c) => c,
            // Load *after* the call: nothing spans it.
            None => self.read_acc(k),
        };
        self.fb.emit(InstKind::Bin {
            op: BinOp::Xor,
            dst: Reg::Virt(d),
            lhs: Reg::Virt(other),
            rhs: Reg::Virt(r),
        });
        self.write_acc(k, d);
    }

    fn emit_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.emit_stmt(s);
        }
    }

    fn emit_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Ops { count } => {
                for _ in 0..*count {
                    self.emit_op();
                }
            }
            Stmt::Call { target } => {
                if self.style == Style::Memory {
                    self.emit_mem_call(*target, false);
                    return;
                }
                let a = self.acc();
                let b = self.acc();
                // Internal callees read *all* their declared parameter
                // registers; passing fewer arguments would leave the
                // callee reading stale register contents (well-defined in
                // the interpreter but different before and after register
                // allocation — an undefined-input program, not a valid
                // test subject). Externals ignore their arguments.
                let (callee, nargs) = match target {
                    Some(t) => (Callee::Func(FuncId::from_index(self.callee_base + t)), 2),
                    None => (
                        Callee::External(self.rng.gen_range(0..8)),
                        self.rng.gen_range(1..=2),
                    ),
                };
                let args = [Reg::Virt(self.accs[a]), Reg::Virt(self.accs[b])];
                let r = self.fb.call(callee, &args[..nargs]);
                let k = self.acc();
                self.fb.emit(InstKind::Bin {
                    op: BinOp::Xor,
                    dst: Reg::Virt(self.accs[k]),
                    lhs: Reg::Virt(self.accs[k]),
                    rhs: Reg::Virt(r),
                });
            }
            Stmt::If {
                hot,
                then_body,
                else_body,
            } => {
                use crate::shape::Hotness;
                let (mask, thr) = hot.mask_threshold();
                let cold_then = matches!(hot, Hotness::Cold | Hotness::VeryCold);
                let t = self.cond_temp(mask);
                let k = self.fb.li(thr);
                let then_blk = self.fb.create_block(None);
                match else_body {
                    None => {
                        let join = self.fb.create_block(None);
                        // Taken edge (t >= thr) goes straight to the join:
                        // a critical jump edge once the then side also
                        // reaches it.
                        self.fb
                            .branch(Cond::Ge, Reg::Virt(t), Reg::Virt(k), join, then_blk);
                        self.open(then_blk);
                        self.cold_depth += usize::from(cold_then);
                        self.emit_stmts(then_body);
                        self.cold_depth -= usize::from(cold_then);
                        // Fall through into the join.
                        self.open(join);
                    }
                    Some(els) => {
                        let else_blk = self.fb.create_block(None);
                        let join = self.fb.create_block(None);
                        self.fb
                            .branch(Cond::Ge, Reg::Virt(t), Reg::Virt(k), else_blk, then_blk);
                        self.open(then_blk);
                        self.cold_depth += usize::from(cold_then);
                        self.emit_stmts(then_body);
                        self.cold_depth -= usize::from(cold_then);
                        self.fb.jump(join);
                        self.open(else_blk);
                        self.emit_stmts(els);
                        // Falls through into the join.
                        self.open(join);
                    }
                }
            }
            Stmt::Loop { trip, body } => {
                let counter = self.fb.li(0);
                let limit = self.fb.li(*trip as i64);
                let header = self.fb.create_block(None);
                let body_blk = self.fb.create_block(None);
                let exit = self.fb.create_block(None);
                // Fall through into the header.
                self.open(header);
                self.fb.branch(
                    Cond::Ge,
                    Reg::Virt(counter),
                    Reg::Virt(limit),
                    exit,
                    body_blk,
                );
                self.escapes.push(exit);
                self.open(body_blk);
                self.emit_stmts(body);
                self.fb.emit(InstKind::BinImm {
                    op: BinOp::Add,
                    dst: Reg::Virt(counter),
                    lhs: Reg::Virt(counter),
                    imm: 1,
                });
                self.fb.jump(header);
                self.escapes.pop();
                self.open(exit);
            }
            Stmt::Goto { hot } => {
                let use_handler =
                    !self.handlers.is_empty() && self.rng.gen_bool(self.handler_goto_frac);
                let target = if use_handler {
                    self.handlers[self.rng.gen_range(0..self.handlers.len())]
                } else {
                    self.escapes.last().copied().unwrap_or(self.epilogue)
                };
                let (mask, thr) = hot.mask_threshold();
                let t = self.cond_temp(mask);
                let k = self.fb.li(thr);
                let cont = self.fb.create_block(None);
                // Escape when t < thr: the taken edge jumps forward to a
                // join-like block (critical jump edge).
                self.fb
                    .branch(Cond::Lt, Reg::Virt(t), Reg::Virt(k), target, cont);
                self.open(cont);
            }
        }
    }
}

/// Emits one function from a skeleton. `callee_base` is the module index
/// of the first possible callee (the function may call indices
/// `callee_base..callee_base + num_callees` as drawn in the skeleton).
pub fn emit_function(
    name: &str,
    target: &Target,
    cfg: &EmitConfig,
    body: &[Stmt],
    callee_base: usize,
    seed: u64,
) -> Function {
    let mut fb = FunctionBuilder::with_target(name, cfg.num_params, target.clone());
    let entry = fb.create_block(Some("entry"));
    let epilogue = fb.create_block(Some("epilogue"));
    let handlers: Vec<BlockId> = (0..cfg.num_handlers)
        .map(|h| fb.create_block(Some(&format!("handler{h}"))))
        .collect();
    fb.switch_to(entry);

    let mut rng = SmallRng::seed_from_u64(seed);
    let num_accs = cfg.pressure.max(1);

    // Accumulators: parameters first, then seeded constants; memory-homed
    // functions immediately spill them to dedicated slots.
    let mut acc_regs = Vec::new();
    for i in 0..cfg.num_params.min(num_accs) {
        acc_regs.push(fb.param(i));
    }
    while acc_regs.len() < num_accs {
        let v = fb.li(rng.gen_range(1..1 << 20));
        acc_regs.push(v);
    }
    let mut acc_slots = Vec::new();
    if cfg.style == Style::Memory {
        for &v in &acc_regs {
            let s = fb.new_slot();
            fb.emit(InstKind::Store {
                src: Reg::Virt(v),
                slot: s,
                kind: spillopt_ir::MemKind::Data,
            });
            acc_slots.push(s);
        }
    }
    let data_slots: Vec<_> = (0..cfg.data_slots).map(|_| fb.new_slot()).collect();
    for (i, &s) in data_slots.iter().enumerate() {
        let src = Reg::Virt(acc_regs[i % acc_regs.len()]);
        fb.emit(InstKind::Store {
            src,
            slot: s,
            kind: spillopt_ir::MemKind::Data,
        });
    }

    let mut em = Emitter {
        fb,
        layout: vec![entry],
        style: cfg.style,
        accs: acc_regs,
        acc_slots,
        data_slots,
        escapes: Vec::new(),
        handlers: handlers.clone(),
        handler_goto_frac: cfg.handler_goto_frac,
        crossing_frac: cfg.crossing_frac,
        cold_crossing: cfg.cold_crossing,
        cold_depth: 0,
        epilogue,
        rng,
        callee_base,
        num_accs,
    };

    // Warm-arm call segments (memory style): each crossing call sits in
    // its own nearly-always-taken arm. Because a bypass path exists,
    // Chow's all-paths hoisting cannot merge the clusters, so
    // shrink-wrapping pays one save/restore pair per segment (≈ the arm
    // frequency each) where entry/exit pays once — the paper's Figure 2
    // situation, and the reason its gzip/bzip2/twolf shrink-wrap ratios
    // exceed 100%.
    if cfg.style == Style::Memory {
        for _ in 0..cfg.hot_segment_calls {
            em.break_block();
            // if (hot ~15/16) { crossing call }
            let t = em.cond_temp(15);
            let k = em.fb.li(14);
            let arm = em.fb.create_block(None);
            let join = em.fb.create_block(None);
            em.fb
                .branch(Cond::Ge, Reg::Virt(t), Reg::Virt(k), join, arm);
            em.open(arm);
            em.emit_mem_call(None, true);
            em.open(join);
            em.emit_op();
        }
    }

    em.emit_stmts(body);

    // Clean cold sites: `if (very cold) { crossing call }`.
    if cfg.style == Style::Memory {
        for _ in 0..cfg.cold_sites {
            em.break_block();
            let t = em.cond_temp(63);
            let k = em.fb.li(1);
            let arm = em.fb.create_block(None);
            let join = em.fb.create_block(None);
            em.fb
                .branch(Cond::Ge, Reg::Virt(t), Reg::Virt(k), join, arm);
            em.open(arm);
            em.emit_mem_call(None, true);
            em.open(join);
            em.emit_op();
        }
    }

    // Guarantee every handler at least two predecessors (so its entering
    // edges are critical jump edges). The goto *checks* sit inside
    // balanced arms — warm, not hot — so that when Chow's artificial data
    // flow absorbs the goto source, the resulting boundary costs about as
    // much as entry/exit rather than a multiple of it (real cold handlers
    // are reached from middling-frequency code, not from the hottest
    // straight line).
    for h in handlers.clone() {
        for _ in 0..2 {
            // if (balanced) { if (very cold) goto handler; }
            let t = em.cond_temp(15);
            let k = em.fb.li(8);
            let arm = em.fb.create_block(None);
            let cont = em.fb.create_block(None);
            em.fb
                .branch(Cond::Ge, Reg::Virt(t), Reg::Virt(k), cont, arm);
            em.open(arm);
            let t2 = em.cond_temp(127);
            let k2 = em.fb.li(1);
            let inner = em.fb.create_block(None);
            em.fb
                .branch(Cond::Lt, Reg::Virt(t2), Reg::Virt(k2), h, inner);
            em.open(inner);
            // falls through into cont
            em.open(cont);
        }
    }
    // Mainline falls through past the handlers into the epilogue.
    {
        let skip = em.fb.create_block(None);
        em.fb.jump(skip); // jump over the handler bodies
                          // Handler bodies: a call with a crossing local, then on to the
                          // epilogue.
        for (i, h) in handlers.iter().enumerate() {
            em.open(*h);
            if em.style == Style::Memory {
                em.emit_mem_call(None, true);
                em.emit_mem_call(None, true);
                let _ = i;
            } else {
                for _ in 0..3 {
                    em.emit_op();
                }
            }
            em.fb.jump(em.epilogue);
        }
        em.open(skip);
    }

    // Fold the accumulators into the return value and close the function.
    // The epilogue block is the goto target for top-level escapes.
    em.open(epilogue);
    let first = em.read_acc(0);
    let mut ret = first;
    for k in 1..em.num_accs {
        let v = em.read_acc(k);
        ret = em.fb.bin(BinOp::Xor, Reg::Virt(ret), Reg::Virt(v));
    }
    em.fb.ret(Some(Reg::Virt(ret)));

    let mut func = em.fb.finish();
    func.set_layout(em.layout);
    func
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::gen_body;
    use spillopt_ir::{verify_function, Cfg, EdgeKind, Module, RegDiscipline};
    use spillopt_profile::Machine;

    fn emit_cfg() -> EmitConfig {
        EmitConfig {
            shape: ShapeConfig {
                budget: 40,
                loop_prob: 0.35,
                else_prob: 0.5,
                cold_if_prob: 0.3,
                goto_prob: 0.12,
                call_prob: 0.0,
                loop_trip: (2, 8),
                max_depth: 4,
            },
            pressure: 6,
            num_params: 2,
            data_slots: 3,
            style: Style::Register,
            num_handlers: 1,
            handler_goto_frac: 0.5,
            hot_segment_calls: 0,
            crossing_frac: 0.5,
            cold_crossing: 0.7,
            cold_sites: 1,
        }
    }

    #[test]
    fn emitted_functions_verify_and_run() {
        for seed in 0..20u64 {
            let cfg = emit_cfg();
            let mut rng = SmallRng::seed_from_u64(seed);
            let body = gen_body(&cfg.shape, &mut rng, 0);
            let target = Target::default();
            let f = emit_function("t", &target, &cfg, &body, 0, seed ^ 0xabc);
            let errs = verify_function(&f, RegDiscipline::Virtual);
            assert!(errs.is_empty(), "seed {seed}: {errs:?}");

            let mut module = Module::new("m");
            let fid = module.add_func(f);
            let mut m = Machine::new(&module, &target);
            m.set_fuel(1 << 24);
            let r1 = m.call(fid, &[3, 4]).expect("runs");
            let mut m2 = Machine::new(&module, &target);
            m2.set_fuel(1 << 24);
            assert_eq!(m2.call(fid, &[3, 4]).unwrap(), r1, "deterministic");
            // Different inputs usually differ (not guaranteed; just check
            // it runs).
            let _ = m2.call(fid, &[5, 6]).expect("runs with other inputs");
        }
    }

    #[test]
    fn produces_critical_jump_edges() {
        // With gotos and plain ifs, critical jump edges should appear in
        // most seeds.
        let mut found = 0;
        for seed in 0..10u64 {
            let cfg = emit_cfg();
            let mut rng = SmallRng::seed_from_u64(seed);
            let body = gen_body(&cfg.shape, &mut rng, 0);
            let target = Target::default();
            let f = emit_function("t", &target, &cfg, &body, 0, seed);
            let cfgs = Cfg::compute(&f);
            if cfgs.edge_ids().any(|e| cfgs.needs_jump_block(e)) {
                found += 1;
            }
        }
        assert!(found >= 5, "critical jump edges too rare: {found}/10");
    }

    #[test]
    fn loops_fall_through_and_terminate() {
        let cfg = emit_cfg();
        let mut rng = SmallRng::seed_from_u64(3);
        let body = gen_body(&cfg.shape, &mut rng, 0);
        let target = Target::default();
        let f = emit_function("t", &target, &cfg, &body, 0, 3);
        let g = Cfg::compute(&f);
        // Some fall-through edges must exist (loop entries, else arms).
        assert!(g.edges().any(|(_, e)| e.kind == EdgeKind::Fall));
    }
}
