//! Property tests for the IR substrate: printer/parser round-trips,
//! dominator correctness against a reachability oracle, and liveness
//! sanity on random structured functions.

use proptest::prelude::*;
use spillopt_ir::analysis::dom::DomTree;
use spillopt_ir::{display, parse_function, Graph};

/// Random DAG-ish directed graph rooted at 0 (plus some back edges).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..14).prop_flat_map(|n| {
        proptest::collection::vec((0usize..n, 0usize..n), n - 1..3 * n).prop_map(move |pairs| {
            let mut g = Graph::new(n);
            // Spine so everything is reachable from 0.
            for v in 1..n {
                g.add_edge(v - 1, v);
            }
            for (u, v) in pairs {
                g.add_edge(u, v);
            }
            g
        })
    })
}

fn oracle_reachable(g: &Graph, from: usize, to: usize, skip: Option<usize>) -> bool {
    if Some(from) == skip {
        return false;
    }
    let mut seen = vec![false; g.num_nodes()];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(u) = stack.pop() {
        if u == to {
            return true;
        }
        for &v in g.succs(u) {
            let v = v as usize;
            if Some(v) != skip && !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// a dominates b iff removing a disconnects b from the root.
    #[test]
    fn dominators_match_cut_oracle(g in arb_graph()) {
        let t = DomTree::compute(&g, 0);
        for a in 0..g.num_nodes() {
            for b in 0..g.num_nodes() {
                let expected = if a == b {
                    oracle_reachable(&g, 0, b, None)
                } else {
                    oracle_reachable(&g, 0, b, None) && !oracle_reachable(&g, 0, b, Some(a))
                };
                prop_assert_eq!(t.dominates(a, b), expected, "dom({}, {})", a, b);
            }
        }
    }
}

mod roundtrip {
    use super::*;
    use rand::SeedableRng as _;
    use spillopt_benchgen::{emit_function, gen_body, EmitConfig, ShapeConfig, Style};
    use spillopt_ir::{verify_function, RegDiscipline, Target};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// print -> parse -> print is a fixpoint, and the parsed function
        /// verifies.
        #[test]
        fn printer_parser_roundtrip(seed in 0u64..100_000, budget in 4usize..30) {
            let target = Target::default();
            let shape = ShapeConfig {
                budget,
                loop_prob: 0.3,
                else_prob: 0.5,
                cold_if_prob: 0.25,
                goto_prob: 0.1,
                call_prob: 0.0,
                loop_trip: (2, 5),
                max_depth: 3,
            };
            let emit = EmitConfig {
                shape: shape.clone(),
                pressure: 4,
                num_params: 2,
                data_slots: 2,
                style: Style::Register,
                num_handlers: (seed % 2) as usize,
                handler_goto_frac: 0.5,
                hot_segment_calls: 0,
                crossing_frac: 0.0,
                cold_crossing: 0.0,
                cold_sites: 0,
            };
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let body = gen_body(&shape, &mut rng, 0);
            let func = emit_function("rt", &target, &emit, &body, 0, seed);
            prop_assert!(verify_function(&func, RegDiscipline::Virtual).is_empty());

            let printed = display::function_to_string(&func);
            let parsed = parse_function(&printed).expect("parse");
            prop_assert!(verify_function(&parsed, RegDiscipline::Virtual).is_empty());
            let reprinted = display::function_to_string(&parsed);
            prop_assert_eq!(printed, reprinted);
        }
    }
}
