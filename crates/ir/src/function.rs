//! Functions: blocks, layout order, and the stack frame.

use crate::block::Block;
use crate::ids::{BlockId, FrameSlot, VReg};

/// Description of a function's stack frame: a dense array of word-sized
/// slots. Slots are allocated monotonically; the interpreter zero-
/// initializes them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FrameInfo {
    num_slots: u32,
}

impl FrameInfo {
    /// Creates an empty frame.
    pub fn new() -> Self {
        FrameInfo::default()
    }

    /// Returns the number of allocated slots.
    pub fn num_slots(&self) -> usize {
        self.num_slots as usize
    }

    /// Allocates a fresh slot.
    pub fn alloc_slot(&mut self) -> FrameSlot {
        let s = FrameSlot::from_index(self.num_slots as usize);
        self.num_slots += 1;
        s
    }

    /// Ensures at least `n` slots exist (used by the parser).
    pub fn reserve_slots(&mut self, n: usize) {
        self.num_slots = self.num_slots.max(n as u32);
    }
}

/// A function: a set of basic blocks with a layout order and a frame.
///
/// Invariants (checked by [`verify`](crate::verify::verify_function)):
///
/// * `layout` is a permutation of all block ids; the entry block is
///   `layout[0]`;
/// * terminators appear only as the last instruction of a block;
/// * a conditional branch's `fallthrough` target is the next block in
///   layout order;
/// * a block with no terminator must not be last in layout (it falls
///   through).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    name: String,
    blocks: Vec<Block>,
    layout: Vec<BlockId>,
    frame: FrameInfo,
    next_vreg: u32,
    num_params: usize,
}

impl Function {
    /// Creates an empty function (no blocks yet).
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            blocks: Vec::new(),
            layout: Vec::new(),
            frame: FrameInfo::new(),
            next_vreg: 0,
            num_params: 0,
        }
    }

    /// Returns the function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of declared parameters (passed in the target's
    /// argument registers at entry).
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Declares the number of parameters.
    pub fn set_num_params(&mut self, n: usize) {
        self.num_params = n;
    }

    /// Appends a new empty block (also appended to the layout) and returns
    /// its id.
    pub fn add_block(&mut self, name: Option<&str>) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        let block = match name {
            Some(n) => Block::with_name(n),
            None => Block::new(),
        };
        self.blocks.push(block);
        self.layout.push(id);
        id
    }

    /// Returns the number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Returns the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Returns the block with the given id, mutably.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates over all block ids in *id* order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(BlockId::from_index)
    }

    /// Returns the layout (memory) order of the blocks.
    pub fn layout(&self) -> &[BlockId] {
        &self.layout
    }

    /// Replaces the layout order.
    ///
    /// # Panics
    ///
    /// Panics if `layout` is not a permutation of the block ids.
    pub fn set_layout(&mut self, layout: Vec<BlockId>) {
        assert_eq!(layout.len(), self.blocks.len(), "layout length mismatch");
        let mut seen = vec![false; self.blocks.len()];
        for b in &layout {
            assert!(!seen[b.index()], "duplicate block {b} in layout");
            seen[b.index()] = true;
        }
        self.layout = layout;
    }

    /// Returns the entry block (first in layout).
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks.
    pub fn entry(&self) -> BlockId {
        *self.layout.first().expect("function has no blocks")
    }

    /// Returns the layout position of a block.
    pub fn layout_pos(&self, b: BlockId) -> usize {
        self.layout
            .iter()
            .position(|&x| x == b)
            .expect("block not in layout")
    }

    /// Returns the block following `b` in layout, if any.
    pub fn layout_next(&self, b: BlockId) -> Option<BlockId> {
        let pos = self.layout_pos(b);
        self.layout.get(pos + 1).copied()
    }

    /// Inserts block `b` into the layout immediately after `after`.
    ///
    /// The block must currently be last in layout (i.e. freshly added via
    /// [`add_block`](Self::add_block)).
    pub fn move_block_after(&mut self, b: BlockId, after: BlockId) {
        assert_eq!(self.layout.last(), Some(&b), "block must be freshly added");
        self.layout.pop();
        let pos = self.layout_pos(after);
        self.layout.insert(pos + 1, b);
    }

    /// Returns the stack frame description.
    pub fn frame(&self) -> &FrameInfo {
        &self.frame
    }

    /// Returns the stack frame description, mutably.
    pub fn frame_mut(&mut self) -> &mut FrameInfo {
        &mut self.frame
    }

    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let v = VReg::from_index(self.next_vreg as usize);
        self.next_vreg += 1;
        v
    }

    /// Returns the number of virtual registers ever allocated (the dense
    /// index limit).
    pub fn num_vregs(&self) -> usize {
        self.next_vreg as usize
    }

    /// Ensures the vreg counter is at least `n` (used by the parser).
    pub fn reserve_vregs(&mut self, n: usize) {
        self.next_vreg = self.next_vreg.max(n as u32);
    }

    /// Returns the ids of all blocks ending in a `Return`.
    pub fn exit_blocks(&self) -> Vec<BlockId> {
        self.block_ids()
            .filter(|&b| {
                matches!(
                    self.block(b).terminator().map(|t| &t.kind),
                    Some(crate::inst::InstKind::Return { .. })
                )
            })
            .collect()
    }

    /// Total number of instructions across all blocks (static size).
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, InstKind};

    #[test]
    fn blocks_and_layout() {
        let mut f = Function::new("f");
        let a = f.add_block(Some("A"));
        let b = f.add_block(Some("B"));
        let c = f.add_block(None);
        assert_eq!(f.num_blocks(), 3);
        assert_eq!(f.entry(), a);
        assert_eq!(f.layout(), &[a, b, c]);
        assert_eq!(f.layout_next(a), Some(b));
        assert_eq!(f.layout_next(c), None);
        f.set_layout(vec![a, c, b]);
        assert_eq!(f.layout_next(a), Some(c));
        assert_eq!(f.layout_pos(b), 2);
    }

    #[test]
    fn move_block_after_inserts_in_layout() {
        let mut f = Function::new("f");
        let a = f.add_block(None);
        let b = f.add_block(None);
        let c = f.add_block(None);
        f.move_block_after(c, a);
        assert_eq!(f.layout(), &[a, c, b]);
    }

    #[test]
    #[should_panic(expected = "duplicate block")]
    fn layout_must_be_permutation() {
        let mut f = Function::new("f");
        let a = f.add_block(None);
        let _b = f.add_block(None);
        f.set_layout(vec![a, a]);
    }

    #[test]
    fn frame_and_vregs() {
        let mut f = Function::new("f");
        let s0 = f.frame_mut().alloc_slot();
        let s1 = f.frame_mut().alloc_slot();
        assert_eq!(s0.index(), 0);
        assert_eq!(s1.index(), 1);
        assert_eq!(f.frame().num_slots(), 2);
        let v0 = f.new_vreg();
        let v1 = f.new_vreg();
        assert_ne!(v0, v1);
        assert_eq!(f.num_vregs(), 2);
    }

    #[test]
    fn exit_blocks_finds_returns() {
        let mut f = Function::new("f");
        let a = f.add_block(None);
        let b = f.add_block(None);
        f.block_mut(a)
            .insts
            .push(Inst::new(InstKind::Jump { target: b }));
        f.block_mut(b)
            .insts
            .push(Inst::new(InstKind::Return { value: None }));
        assert_eq!(f.exit_blocks(), vec![b]);
    }
}
