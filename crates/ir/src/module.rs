//! Modules: collections of functions that can call each other.

use crate::function::Function;
use crate::ids::FuncId;

/// A module: a named collection of functions.
///
/// [`Callee::Func`](crate::inst::Callee::Func) operands refer to functions
/// of the same module by [`FuncId`].
#[derive(Clone, Debug, Default)]
pub struct Module {
    name: String,
    funcs: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            funcs: Vec::new(),
        }
    }

    /// Returns the module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a function and returns its id.
    pub fn add_func(&mut self, func: Function) -> FuncId {
        let id = FuncId::from_index(self.funcs.len());
        self.funcs.push(func);
        id
    }

    /// Returns the function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Returns the function with the given id, mutably.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Returns the number of functions.
    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }

    /// Iterates over all function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.funcs.len()).map(FuncId::from_index)
    }

    /// Iterates over (id, function) pairs.
    pub fn funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> + '_ {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId::from_index(i), f))
    }

    /// Looks a function up by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name() == name)
            .map(FuncId::from_index)
    }

    /// Total static instruction count over all functions.
    pub fn num_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.num_insts()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut m = Module::new("m");
        let a = m.add_func(Function::new("alpha"));
        let b = m.add_func(Function::new("beta"));
        assert_eq!(m.num_funcs(), 2);
        assert_eq!(m.func(a).name(), "alpha");
        assert_eq!(m.func_by_name("beta"), Some(b));
        assert_eq!(m.func_by_name("gamma"), None);
        assert_eq!(m.funcs().count(), 2);
    }
}
