//! A small generic directed-graph representation shared by the dominator
//! machinery and (in `spillopt-pst`) the edge-split graphs.

use crate::cfg::Cfg;

/// A directed graph over dense node indices `0..n`.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        }
    }

    /// Returns the number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.succs.len()
    }

    /// Adds a directed edge `u -> v` (parallel edges allowed).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        self.succs[u].push(v as u32);
        self.preds[v].push(u as u32);
    }

    /// Returns the successors of `u`.
    pub fn succs(&self, u: usize) -> &[u32] {
        &self.succs[u]
    }

    /// Returns the predecessors of `u`.
    pub fn preds(&self, u: usize) -> &[u32] {
        &self.preds[u]
    }

    /// Returns the reversed graph.
    pub fn reversed(&self) -> Graph {
        Graph {
            succs: self.preds.clone(),
            preds: self.succs.clone(),
        }
    }

    /// Builds the graph of a CFG (nodes are block indices).
    pub fn from_cfg(cfg: &Cfg) -> Graph {
        let mut g = Graph::new(cfg.num_blocks());
        for (_, e) in cfg.edges() {
            g.add_edge(e.from.index(), e.to.index());
        }
        g
    }

    /// Builds the *augmented* graph of a CFG: blocks `0..n` plus a virtual
    /// exit node `n` that every return block feeds into. Useful for
    /// post-dominators on multi-exit functions.
    ///
    /// Returns the graph and the virtual exit's index.
    pub fn from_cfg_with_virtual_exit(cfg: &Cfg) -> (Graph, usize) {
        let n = cfg.num_blocks();
        let mut g = Graph::new(n + 1);
        for (_, e) in cfg.edges() {
            g.add_edge(e.from.index(), e.to.index());
        }
        for &b in cfg.exit_blocks() {
            g.add_edge(b.index(), n);
        }
        (g, n)
    }

    /// Depth-first preorder from `root` (unreachable nodes omitted).
    pub fn preorder(&self, root: usize) -> Vec<usize> {
        let mut seen = vec![false; self.num_nodes()];
        let mut order = Vec::new();
        let mut stack = vec![root];
        seen[root] = true;
        while let Some(u) = stack.pop() {
            order.push(u);
            for &v in self.succs(u).iter().rev() {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v as usize);
                }
            }
        }
        order
    }

    /// Depth-first postorder from `root` (unreachable nodes omitted).
    pub fn postorder(&self, root: usize) -> Vec<usize> {
        let mut seen = vec![false; self.num_nodes()];
        let mut order = Vec::new();
        // (node, next child index)
        let mut stack = vec![(root, 0usize)];
        seen[root] = true;
        while let Some(&mut (u, ref mut ci)) = stack.last_mut() {
            if *ci < self.succs(u).len() {
                let v = self.succs(u)[*ci] as usize;
                *ci += 1;
                if !seen[v] {
                    seen[v] = true;
                    stack.push((v, 0));
                }
            } else {
                order.push(u);
                stack.pop();
            }
        }
        order
    }

    /// Reverse postorder from `root`.
    pub fn reverse_postorder(&self, root: usize) -> Vec<usize> {
        let mut po = self.postorder(root);
        po.reverse();
        po
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn edges_and_reversal() {
        let g = diamond();
        assert_eq!(g.succs(0), &[1, 2]);
        assert_eq!(g.preds(3), &[1, 2]);
        let r = g.reversed();
        assert_eq!(r.succs(3), &[1, 2]);
        assert_eq!(r.preds(0), &[1, 2]);
    }

    #[test]
    fn orders() {
        let g = diamond();
        let pre = g.preorder(0);
        assert_eq!(pre[0], 0);
        assert_eq!(pre.len(), 4);
        let rpo = g.reverse_postorder(0);
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo[3], 3);
        // In a diamond, RPO places 3 last.
        let po = g.postorder(0);
        assert_eq!(po[3], 0);
    }

    #[test]
    fn skips_unreachable() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        assert_eq!(g.preorder(0), vec![0, 1]);
        assert_eq!(g.postorder(0).len(), 2);
    }
}
