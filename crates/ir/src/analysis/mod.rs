//! CFG analyses: generic graphs, dominators, loops, liveness.

pub mod dom;
pub mod graph;
pub mod liveness;
pub mod loops;

pub use dom::{BlockDoms, BlockPostDoms, DomTree};
pub use graph::Graph;
pub use liveness::{Liveness, RegUniverse};
pub use loops::{sccs, CyclicRegion, LoopInfo, NaturalLoop};
