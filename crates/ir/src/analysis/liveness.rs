//! Live-register analysis over both virtual and physical registers.

use crate::bitset::DenseBitSet;
use crate::cfg::Cfg;
use crate::function::Function;
use crate::ids::{BlockId, PReg, Reg, VReg};
use crate::target::Target;

/// Dense index space over a function's registers: virtual registers first,
/// then physical registers.
#[derive(Clone, Debug)]
pub struct RegUniverse {
    num_vregs: usize,
    num_pregs: usize,
}

impl RegUniverse {
    /// Builds the universe for `func` under `target`.
    pub fn new(func: &Function, target: &Target) -> Self {
        RegUniverse {
            num_vregs: func.num_vregs(),
            num_pregs: target.reg_index_limit(),
        }
    }

    /// Total number of register indices.
    pub fn len(&self) -> usize {
        self.num_vregs + self.num_pregs
    }

    /// Returns `true` when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the number of virtual registers.
    pub fn num_vregs(&self) -> usize {
        self.num_vregs
    }

    /// Maps a register to its dense index.
    pub fn index(&self, r: Reg) -> usize {
        match r {
            Reg::Virt(v) => {
                debug_assert!(v.index() < self.num_vregs);
                v.index()
            }
            Reg::Phys(p) => {
                debug_assert!(p.index() < self.num_pregs);
                self.num_vregs + p.index()
            }
        }
    }

    /// Maps a dense index back to a register.
    pub fn reg(&self, i: usize) -> Reg {
        if i < self.num_vregs {
            Reg::Virt(VReg::from_index(i))
        } else {
            Reg::Phys(PReg::new((i - self.num_vregs) as u8))
        }
    }
}

/// Per-block liveness sets.
#[derive(Clone, Debug)]
pub struct Liveness {
    universe: RegUniverse,
    live_in: Vec<DenseBitSet>,
    live_out: Vec<DenseBitSet>,
}

impl Liveness {
    /// Computes per-block liveness by backward iteration to a fixpoint.
    ///
    /// Calls implicitly define (clobber) all caller-saved physical
    /// registers of `target`.
    ///
    /// The iteration exploits monotonicity: may-liveness sets only grow,
    /// so each visit unions `live_in` of the successors into `live_out`
    /// and applies the transfer function `in |= out \ kill` as fused
    /// word loops in place — no per-visit allocation or set comparison.
    /// The fixpoint is unique, so the result is identical to the
    /// reference implementation ([`Liveness::compute_reference`]).
    pub fn compute(func: &Function, cfg: &Cfg, target: &Target) -> Self {
        let universe = RegUniverse::new(func, target);
        let n = func.num_blocks();
        let mut gen = vec![DenseBitSet::new(universe.len()); n]; // upward-exposed uses
        let mut kill = vec![DenseBitSet::new(universe.len()); n]; // defs

        for b in func.block_ids() {
            let (g, k) = (&mut gen[b.index()], &mut kill[b.index()]);
            for inst in &func.block(b).insts {
                inst.for_each_use(|r| {
                    let i = universe.index(r);
                    if !k.contains(i) {
                        g.insert(i);
                    }
                });
                inst.for_each_def(|r| {
                    k.insert(universe.index(r));
                });
                inst.for_each_clobber(target, |p| {
                    k.insert(universe.index(Reg::Phys(p)));
                });
            }
        }

        // Seed live_in of every reachable block with gen (gen is always
        // in the fixpoint; unreachable blocks keep empty sets, matching
        // the reference), then iterate in postorder (successors first)
        // until stable.
        let order = reachable_postorder(cfg);
        let mut live_in = gen;
        {
            let mut reachable = vec![false; n];
            for &bi in &order {
                reachable[bi] = true;
            }
            for (bi, set) in live_in.iter_mut().enumerate() {
                if !reachable[bi] {
                    set.clear();
                }
            }
        }
        let mut live_out = vec![DenseBitSet::new(universe.len()); n];
        let mut changed = true;
        while changed {
            changed = false;
            for &bi in &order {
                let b = BlockId::from_index(bi);
                let mut out_changed = false;
                for s in cfg.succ_blocks(b) {
                    out_changed |= live_out[bi].union_with(&live_in[s.index()]);
                }
                if out_changed {
                    changed = true;
                    let inn = &mut live_in[bi];
                    changed |= inn.union_with_subtracted(&live_out[bi], &kill[bi]);
                }
            }
        }

        Liveness {
            universe,
            live_in,
            live_out,
        }
    }

    /// The retired per-visit-allocating implementation, kept verbatim as
    /// the reference for differential tests and the perf-trajectory
    /// bench (`spillopt bench`). Same unique fixpoint as
    /// [`Liveness::compute`].
    pub fn compute_reference(func: &Function, cfg: &Cfg, target: &Target) -> Self {
        let universe = RegUniverse::new(func, target);
        let n = func.num_blocks();
        let mut gen = vec![DenseBitSet::new(universe.len()); n]; // upward-exposed uses
        let mut kill = vec![DenseBitSet::new(universe.len()); n]; // defs

        for b in func.block_ids() {
            let (g, k) = (&mut gen[b.index()], &mut kill[b.index()]);
            for inst in &func.block(b).insts {
                inst.for_each_use(|r| {
                    let i = universe.index(r);
                    if !k.contains(i) {
                        g.insert(i);
                    }
                });
                inst.for_each_def(|r| {
                    k.insert(universe.index(r));
                });
                inst.for_each_clobber(target, |p| {
                    k.insert(universe.index(Reg::Phys(p)));
                });
            }
        }

        let mut live_in = vec![DenseBitSet::new(universe.len()); n];
        let mut live_out = vec![DenseBitSet::new(universe.len()); n];

        // Worklist over postorder for fast convergence.
        let graph = crate::analysis::graph::Graph::from_cfg(cfg);
        let order = graph.postorder(cfg.entry().index());
        let mut changed = true;
        while changed {
            changed = false;
            for &bi in &order {
                let b = BlockId::from_index(bi);
                let mut out = DenseBitSet::new(universe.len());
                for s in cfg.succ_blocks(b) {
                    out.union_with(&live_in[s.index()]);
                }
                let mut inn = out.clone();
                inn.subtract(&kill[bi]);
                inn.union_with(&gen[bi]);
                if out != live_out[bi] {
                    live_out[bi] = out;
                    changed = true;
                }
                if inn != live_in[bi] {
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }

        Liveness {
            universe,
            live_in,
            live_out,
        }
    }

    /// Returns the register index space.
    pub fn universe(&self) -> &RegUniverse {
        &self.universe
    }

    /// Registers live at entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &DenseBitSet {
        &self.live_in[b.index()]
    }

    /// Registers live at exit of `b`.
    pub fn live_out(&self, b: BlockId) -> &DenseBitSet {
        &self.live_out[b.index()]
    }

    /// Walks block `b` backwards, invoking `visit(inst_index, live_after)`
    /// for each instruction with the set of registers live *after* it, and
    /// returning control with the set updated to live-before as the walk
    /// proceeds. `live_after` passed to the callback is the liveness right
    /// after the instruction executes.
    pub fn for_each_inst_backwards(
        &self,
        func: &Function,
        target: &Target,
        b: BlockId,
        mut visit: impl FnMut(usize, &DenseBitSet),
    ) {
        let mut live = self.live_out[b.index()].clone();
        let insts = &func.block(b).insts;
        for (i, inst) in insts.iter().enumerate().rev() {
            visit(i, &live);
            inst.for_each_def(|r| {
                live.remove(self.universe.index(r));
            });
            inst.for_each_clobber(target, |p| {
                live.remove(self.universe.index(Reg::Phys(p)));
            });
            inst.for_each_use(|r| {
                live.insert(self.universe.index(r));
            });
        }
    }
}

/// Postorder over the blocks reachable from the entry, as indices
/// (allocation-lean local DFS; no intermediate `Graph`).
fn reachable_postorder(cfg: &Cfg) -> Vec<usize> {
    let n = cfg.num_blocks();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(usize, usize)> = vec![(cfg.entry().index(), 0)];
    seen[cfg.entry().index()] = true;
    while let Some(&mut (b, ref mut ci)) = stack.last_mut() {
        let succs = cfg.succ_edges(BlockId::from_index(b));
        if *ci < succs.len() {
            let t = cfg.edge(succs[*ci]).to.index();
            *ci += 1;
            if !seen[t] {
                seen[t] = true;
                stack.push((t, 0));
            }
        } else {
            order.push(b);
            stack.pop();
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Callee, Cond};

    /// The rewritten fixpoint must agree exactly with the reference on
    /// every block of a branchy, loopy function.
    #[test]
    fn fast_matches_reference() {
        let mut fb = FunctionBuilder::new("f", 0);
        let a = fb.create_block(None);
        let h = fb.create_block(None);
        let body = fb.create_block(None);
        let e = fb.create_block(None);
        fb.switch_to(a);
        let i = fb.li(0);
        let n = fb.li(10);
        fb.jump(h);
        fb.switch_to(h);
        fb.branch(Cond::Ge, Reg::Virt(i), Reg::Virt(n), e, body);
        fb.switch_to(body);
        let _ = fb.call(Callee::External(0), &[]);
        fb.emit(crate::inst::InstKind::BinImm {
            op: BinOp::Add,
            dst: Reg::Virt(i),
            lhs: Reg::Virt(i),
            imm: 1,
        });
        fb.jump(h);
        fb.switch_to(e);
        fb.ret(Some(Reg::Virt(i)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let t = Target::default();
        let fast = Liveness::compute(&f, &cfg, &t);
        let slow = Liveness::compute_reference(&f, &cfg, &t);
        for b in f.block_ids() {
            assert_eq!(fast.live_in(b), slow.live_in(b), "live_in {b}");
            assert_eq!(fast.live_out(b), slow.live_out(b), "live_out {b}");
        }
    }

    #[test]
    fn liveness_across_branches() {
        // v0 defined in entry, used in both arms; v1 defined and used only
        // in one arm.
        let mut fb = FunctionBuilder::new("f", 0);
        let a = fb.create_block(Some("A"));
        let b = fb.create_block(Some("B"));
        let c = fb.create_block(Some("C"));
        fb.switch_to(a);
        let v0 = fb.li(1);
        fb.branch(Cond::Lt, Reg::Virt(v0), Reg::Virt(v0), c, b);
        fb.switch_to(b);
        let v1 = fb.bin(BinOp::Add, Reg::Virt(v0), Reg::Virt(v0));
        fb.ret(Some(Reg::Virt(v1)));
        fb.switch_to(c);
        fb.ret(Some(Reg::Virt(v0)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let t = Target::default();
        let lv = Liveness::compute(&f, &cfg, &t);
        let u = lv.universe();
        assert!(lv.live_out(a).contains(u.index(Reg::Virt(v0))));
        assert!(lv.live_in(b).contains(u.index(Reg::Virt(v0))));
        assert!(lv.live_in(c).contains(u.index(Reg::Virt(v0))));
        assert!(!lv.live_in(b).contains(u.index(Reg::Virt(v1))));
        assert!(!lv.live_in(a).contains(u.index(Reg::Virt(v0))));
    }

    #[test]
    fn loop_keeps_counter_alive() {
        let mut fb = FunctionBuilder::new("g", 0);
        let a = fb.create_block(None);
        let h = fb.create_block(None);
        let body = fb.create_block(None);
        let e = fb.create_block(None);
        fb.switch_to(a);
        let i = fb.li(0);
        let n = fb.li(10);
        fb.jump(h);
        fb.switch_to(h);
        fb.branch(Cond::Ge, Reg::Virt(i), Reg::Virt(n), e, body);
        fb.switch_to(body);
        // i = i + 1 (reuse the same vreg to model a mutable counter)
        fb.emit(crate::inst::InstKind::BinImm {
            op: BinOp::Add,
            dst: Reg::Virt(i),
            lhs: Reg::Virt(i),
            imm: 1,
        });
        fb.jump(h);
        fb.switch_to(e);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let t = Target::default();
        let lv = Liveness::compute(&f, &cfg, &t);
        let u = lv.universe();
        let ii = u.index(Reg::Virt(i));
        assert!(lv.live_in(h).contains(ii));
        assert!(lv.live_out(body).contains(ii));
        assert!(!lv.live_out(e).contains(ii));
    }

    #[test]
    fn calls_clobber_caller_saved() {
        let mut fb = FunctionBuilder::new("h", 0);
        let a = fb.create_block(None);
        fb.switch_to(a);
        let v = fb.li(5);
        let _r = fb.call(Callee::External(0), &[]);
        fb.ret(Some(Reg::Virt(v)));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let t = Target::default();
        let lv = Liveness::compute(&f, &cfg, &t);
        // Walk backwards checking that v is live across the call.
        let u = lv.universe();
        let vi = u.index(Reg::Virt(v));
        let mut live_across_call = false;
        lv.for_each_inst_backwards(&f, &t, a, |idx, live| {
            let inst = &f.block(a).insts[idx];
            if matches!(inst.kind, crate::inst::InstKind::Call { .. }) && live.contains(vi) {
                live_across_call = true;
            }
        });
        assert!(live_across_call);
    }

    #[test]
    fn universe_roundtrip() {
        let mut f = Function::new("u");
        let _ = f.new_vreg();
        let _ = f.new_vreg();
        let t = Target::default();
        let u = RegUniverse::new(&f, &t);
        assert_eq!(u.len(), 2 + t.reg_index_limit());
        for i in 0..u.len() {
            assert_eq!(u.index(u.reg(i)), i);
        }
    }
}
