//! Natural loops, loop nesting depth, and strongly-connected components.
//!
//! Chow's shrink-wrapping avoids placing save/restore code inside loops by
//! propagating artificial data flow over loop bodies; we provide both
//! natural loops (reducible CFGs, with nesting depth for spill costs) and
//! Tarjan SCCs (a total notion of "cyclic region" that the Chow
//! implementation uses so that irreducible graphs are still handled).

use crate::analysis::dom::BlockDoms;
use crate::bitset::DenseBitSet;
use crate::cfg::Cfg;
use crate::ids::BlockId;

/// A natural loop: a back edge's header plus the blocks that reach the
/// latch without passing the header.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge, dominates the body).
    pub header: BlockId,
    /// All blocks in the loop (including the header).
    pub body: DenseBitSet,
}

/// The set of natural loops of a function, with per-block nesting depth.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    loops: Vec<NaturalLoop>,
    depth: Vec<u32>,
    reducible: bool,
}

impl LoopInfo {
    /// Computes natural loops from back edges (`u -> v` where `v`
    /// dominates `u`). If other retreating edges exist the CFG is
    /// irreducible; `is_reducible` reports this and the offending cycles
    /// are simply not represented as natural loops (use [`sccs`] for a
    /// total cyclic-region notion).
    pub fn compute(cfg: &Cfg, doms: &BlockDoms) -> Self {
        let n = cfg.num_blocks();
        let mut loops: Vec<NaturalLoop> = Vec::new();

        // Find back edges.
        for (_, e) in cfg.edges() {
            if doms.dominates(e.to, e.from) {
                // Natural loop of this back edge.
                let header = e.to;
                let mut body = DenseBitSet::new(n);
                body.insert(header.index());
                let mut stack = Vec::new();
                if body.insert(e.from.index()) {
                    stack.push(e.from);
                }
                while let Some(b) = stack.pop() {
                    for p in cfg.pred_blocks(b) {
                        if body.insert(p.index()) {
                            stack.push(p);
                        }
                    }
                }
                // Merge with an existing loop sharing the header (multiple
                // latches).
                if let Some(l) = loops.iter_mut().find(|l| l.header == header) {
                    l.body.union_with(&body);
                } else {
                    loops.push(NaturalLoop { header, body });
                }
            }
        }

        // Reducibility: every retreating edge (per DFS) must be a back
        // edge. Equivalently: check that every cycle goes through some
        // natural-loop header it is dominated by. We use the simpler
        // standard test: run a DFS and classify.
        let reducible = is_reducible(cfg, doms);

        // Nesting depth: number of loops containing each block.
        let mut depth = vec![0u32; n];
        for l in &loops {
            for b in l.body.iter() {
                depth[b] += 1;
            }
        }

        LoopInfo {
            loops,
            depth,
            reducible,
        }
    }

    /// Returns all natural loops (one per header).
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// Loop nesting depth of a block (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> usize {
        self.depth[b.index()] as usize
    }

    /// Returns `true` if all cycles are natural loops.
    pub fn is_reducible(&self) -> bool {
        self.reducible
    }
}

fn is_reducible(cfg: &Cfg, doms: &BlockDoms) -> bool {
    // DFS with colors; a retreating edge to a non-dominating target makes
    // the graph irreducible.
    let n = cfg.num_blocks();
    let mut state = vec![0u8; n]; // 0 = white, 1 = on stack, 2 = done
    let mut stack: Vec<(BlockId, usize)> = vec![(cfg.entry(), 0)];
    state[cfg.entry().index()] = 1;
    while let Some(&mut (b, ref mut ci)) = stack.last_mut() {
        let succs = cfg.succ_edges(b);
        if *ci < succs.len() {
            let t = cfg.edge(succs[*ci]).to;
            *ci += 1;
            match state[t.index()] {
                0 => {
                    state[t.index()] = 1;
                    stack.push((t, 0));
                }
                1
                    // Retreating edge; must target a dominator.
                    if !doms.dominates(t, b) => {
                        return false;
                    }
                _ => {}
            }
        } else {
            state[b.index()] = 2;
            stack.pop();
        }
    }
    true
}

/// A cyclic strongly-connected component: more than one block, or a single
/// block with a self edge.
#[derive(Clone, Debug)]
pub struct CyclicRegion {
    /// The blocks of the component.
    pub blocks: DenseBitSet,
}

/// Computes the *cyclic* SCCs of the CFG (Tarjan). Trivial single-block
/// components without self edges are omitted.
pub fn sccs(cfg: &Cfg) -> Vec<CyclicRegion> {
    let n = cfg.num_blocks();
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut out = Vec::new();

    // Iterative Tarjan.
    #[derive(Clone, Copy)]
    struct Frame {
        node: usize,
        child: usize,
    }
    for start in 0..n {
        if index[start] != u32::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame {
            node: start,
            child: 0,
        }];
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(frame) = call.last().copied() {
            let u = frame.node;
            let succs = cfg.succ_edges(BlockId::from_index(u));
            if frame.child < succs.len() {
                call.last_mut().unwrap().child += 1;
                let v = cfg.edge(succs[frame.child]).to.index();
                if index[v] == u32::MAX {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    call.push(Frame { node: v, child: 0 });
                } else if on_stack[v] {
                    low[u] = low[u].min(index[v]);
                }
            } else {
                call.pop();
                if let Some(parent) = call.last() {
                    let p = parent.node;
                    low[p] = low[p].min(low[u]);
                }
                if low[u] == index[u] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == u {
                            break;
                        }
                    }
                    let cyclic = comp.len() > 1
                        || cfg
                            .succ_blocks(BlockId::from_index(u))
                            .any(|s| s.index() == u);
                    if cyclic {
                        let mut blocks = DenseBitSet::new(n);
                        blocks.extend(comp);
                        out.push(CyclicRegion { blocks });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Function;
    use crate::ids::Reg;
    use crate::inst::Cond;

    /// entry -> header; header -> {body (fall), exit (taken)};
    /// body -> header (back edge); exit: ret.
    fn loop_func() -> (Function, [BlockId; 4]) {
        let mut fb = FunctionBuilder::new("loop", 0);
        let entry = fb.create_block(Some("entry"));
        let header = fb.create_block(Some("header"));
        let body = fb.create_block(Some("body"));
        let exit = fb.create_block(Some("exit"));
        fb.switch_to(entry);
        let i = fb.li(0);
        let nv = fb.li(10);
        fb.jump(header);
        fb.switch_to(header);
        fb.branch(Cond::Ge, Reg::Virt(i), Reg::Virt(nv), exit, body);
        fb.switch_to(body);
        fb.jump(header);
        fb.switch_to(exit);
        fb.ret(None);
        (fb.finish(), [entry, header, body, exit])
    }

    #[test]
    fn finds_natural_loop() {
        let (f, [_, header, body, exit]) = loop_func();
        let cfg = Cfg::compute(&f);
        let doms = BlockDoms::compute(&cfg);
        let li = LoopInfo::compute(&cfg, &doms);
        assert!(li.is_reducible());
        assert_eq!(li.loops().len(), 1);
        let l = &li.loops()[0];
        assert_eq!(l.header, header);
        assert!(l.body.contains(header.index()));
        assert!(l.body.contains(body.index()));
        assert!(!l.body.contains(exit.index()));
        assert_eq!(li.depth(body), 1);
        assert_eq!(li.depth(exit), 0);
    }

    #[test]
    fn sccs_find_the_cycle() {
        let (f, [entry, header, body, exit]) = loop_func();
        let cfg = Cfg::compute(&f);
        let regions = sccs(&cfg);
        assert_eq!(regions.len(), 1);
        let r = &regions[0];
        assert!(r.blocks.contains(header.index()));
        assert!(r.blocks.contains(body.index()));
        assert!(!r.blocks.contains(entry.index()));
        assert!(!r.blocks.contains(exit.index()));
    }

    #[test]
    fn acyclic_has_no_loops() {
        let mut fb = FunctionBuilder::new("acyclic", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        fb.switch_to(a);
        fb.jump(b);
        fb.switch_to(b);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let doms = BlockDoms::compute(&cfg);
        let li = LoopInfo::compute(&cfg, &doms);
        assert!(li.loops().is_empty());
        assert!(li.is_reducible());
        assert!(sccs(&cfg).is_empty());
    }
}
