//! Dominator and post-dominator trees (Cooper-Harvey-Kennedy).

use crate::analysis::graph::Graph;
use crate::cfg::Cfg;
use crate::ids::BlockId;

/// A dominator tree over dense node indices, with O(1) dominance queries
/// via Euler-interval numbering of the tree.
#[derive(Clone, Debug)]
pub struct DomTree {
    root: usize,
    idom: Vec<Option<u32>>,
    /// Discovery/finish intervals of each node in a DFS of the dominator
    /// tree; `a` dominates `b` iff `a`'s interval contains `b`'s.
    tin: Vec<u32>,
    tout: Vec<u32>,
    depth: Vec<u32>,
}

impl DomTree {
    /// Computes the dominator tree of `graph` rooted at `root`.
    /// Nodes unreachable from `root` have no immediate dominator.
    pub fn compute(graph: &Graph, root: usize) -> Self {
        Self::compute_dir(graph, root, false)
    }

    /// Computes the dominator tree of the *reversed* graph rooted at
    /// `root` — post-dominators of the forward graph — without
    /// materializing a reversed copy (the graph already stores both
    /// adjacency directions).
    pub fn compute_reversed(graph: &Graph, root: usize) -> Self {
        Self::compute_dir(graph, root, true)
    }

    /// The shared implementation: `rev` swaps the roles of the
    /// successor and predecessor lists.
    fn compute_dir(graph: &Graph, root: usize, rev: bool) -> Self {
        let n = graph.num_nodes();
        let succs = |u: usize| -> &[u32] {
            if rev {
                graph.preds(u)
            } else {
                graph.succs(u)
            }
        };
        let preds = |u: usize| -> &[u32] {
            if rev {
                graph.succs(u)
            } else {
                graph.preds(u)
            }
        };
        // Reverse postorder over the chosen direction.
        let rpo = {
            let mut seen = vec![false; n];
            let mut order = Vec::with_capacity(n);
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            seen[root] = true;
            while let Some(&mut (u, ref mut ci)) = stack.last_mut() {
                let row = succs(u);
                if *ci < row.len() {
                    let v = row[*ci] as usize;
                    *ci += 1;
                    if !seen[v] {
                        seen[v] = true;
                        stack.push((v, 0));
                    }
                } else {
                    order.push(u);
                    stack.pop();
                }
            }
            order.reverse();
            order
        };
        let mut rpo_num = vec![u32::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_num[b] = i as u32;
        }

        let mut idom: Vec<Option<u32>> = vec![None; n];
        idom[root] = Some(root as u32);

        let intersect = |idom: &[Option<u32>], rpo_num: &[u32], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_num[a] > rpo_num[b] {
                    a = idom[a].expect("processed node") as usize;
                }
                while rpo_num[b] > rpo_num[a] {
                    b = idom[b].expect("processed node") as usize;
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b == root {
                    continue;
                }
                let mut new_idom: Option<usize> = None;
                for &p in preds(b) {
                    let p = p as usize;
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_num, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b] != Some(ni as u32) {
                        idom[b] = Some(ni as u32);
                        changed = true;
                    }
                }
            }
        }

        // Euler numbering of the dominator tree. Children in flat CSR
        // form (counting sort by parent) — no per-node Vec churn.
        let mut child_off = vec![0u32; n + 2];
        for (v, p) in idom.iter().enumerate() {
            if v == root {
                continue;
            }
            if let Some(p) = p {
                child_off[*p as usize + 2] += 1;
            }
        }
        for i in 2..child_off.len() {
            child_off[i] += child_off[i - 1];
        }
        let mut child_items = vec![0u32; child_off[n + 1] as usize];
        for (v, p) in idom.iter().enumerate() {
            if v == root {
                continue;
            }
            if let Some(p) = p {
                let slot = &mut child_off[*p as usize + 1];
                child_items[*slot as usize] = v as u32;
                *slot += 1;
            }
        }
        let row =
            |u: usize| -> &[u32] { &child_items[child_off[u] as usize..child_off[u + 1] as usize] };
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut depth = vec![0u32; n];
        let mut clock = 0u32;
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        tin[root] = {
            clock += 1;
            clock
        };
        while let Some(&mut (u, ref mut ci)) = stack.last_mut() {
            let kids = row(u);
            if *ci < kids.len() {
                let v = kids[*ci] as usize;
                *ci += 1;
                depth[v] = depth[u] + 1;
                clock += 1;
                tin[v] = clock;
                stack.push((v, 0));
            } else {
                clock += 1;
                tout[u] = clock;
                stack.pop();
            }
        }

        DomTree {
            root,
            idom,
            tin,
            tout,
            depth,
        }
    }

    /// Returns the root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Returns the immediate dominator of `v` (the root is its own idom);
    /// `None` for unreachable nodes.
    pub fn idom(&self, v: usize) -> Option<usize> {
        self.idom[v].map(|x| x as usize)
    }

    /// Returns `true` if `v` is reachable from the root.
    pub fn is_reachable(&self, v: usize) -> bool {
        self.idom[v].is_some()
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    ///
    /// Unreachable nodes dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if self.idom[a].is_none() || self.idom[b].is_none() {
            return false;
        }
        self.tin[a] <= self.tin[b] && self.tout[b] <= self.tout[a]
    }

    /// Returns `true` if `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: usize, b: usize) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Depth of `v` in the dominator tree (root = 0).
    pub fn depth(&self, v: usize) -> usize {
        self.depth[v] as usize
    }

    /// The retired implementation (per-node child vectors, forward
    /// direction only), kept verbatim for the perf-trajectory bench's
    /// frozen pipeline. Same tree as [`DomTree::compute`].
    pub fn compute_reference(graph: &Graph, root: usize) -> Self {
        let n = graph.num_nodes();
        let rpo = graph.reverse_postorder(root);
        let mut rpo_num = vec![u32::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_num[b] = i as u32;
        }

        let mut idom: Vec<Option<u32>> = vec![None; n];
        idom[root] = Some(root as u32);

        let intersect = |idom: &[Option<u32>], rpo_num: &[u32], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_num[a] > rpo_num[b] {
                    a = idom[a].expect("processed node") as usize;
                }
                while rpo_num[b] > rpo_num[a] {
                    b = idom[b].expect("processed node") as usize;
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b == root {
                    continue;
                }
                let mut new_idom: Option<usize> = None;
                for &p in graph.preds(b) {
                    let p = p as usize;
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_num, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b] != Some(ni as u32) {
                        idom[b] = Some(ni as u32);
                        changed = true;
                    }
                }
            }
        }

        // Euler numbering of the dominator tree.
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, p) in idom.iter().enumerate() {
            if v == root {
                continue;
            }
            if let Some(p) = p {
                children[*p as usize].push(v as u32);
            }
        }
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut depth = vec![0u32; n];
        let mut clock = 0u32;
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        tin[root] = {
            clock += 1;
            clock
        };
        while let Some(&mut (u, ref mut ci)) = stack.last_mut() {
            if *ci < children[u].len() {
                let v = children[u][*ci] as usize;
                *ci += 1;
                depth[v] = depth[u] + 1;
                clock += 1;
                tin[v] = clock;
                stack.push((v, 0));
            } else {
                clock += 1;
                tout[u] = clock;
                stack.pop();
            }
        }

        DomTree {
            root,
            idom,
            tin,
            tout,
            depth,
        }
    }
}

/// Dominator tree over a function's blocks.
#[derive(Clone, Debug)]
pub struct BlockDoms {
    tree: DomTree,
}

impl BlockDoms {
    /// Computes dominators of a CFG from its entry block.
    pub fn compute(cfg: &Cfg) -> Self {
        let graph = Graph::from_cfg(cfg);
        BlockDoms {
            tree: DomTree::compute(&graph, cfg.entry().index()),
        }
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.tree.dominates(a.index(), b.index())
    }

    /// Returns the immediate dominator of `b` (`None` for the entry and
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.tree.idom(b.index()) {
            Some(i) if i != b.index() => Some(BlockId::from_index(i)),
            _ => None,
        }
    }

    /// Returns the underlying generic tree.
    pub fn tree(&self) -> &DomTree {
        &self.tree
    }
}

/// Post-dominator tree over a function's blocks, rooted at a virtual exit
/// that all return blocks feed.
#[derive(Clone, Debug)]
pub struct BlockPostDoms {
    tree: DomTree,
    virtual_exit: usize,
}

impl BlockPostDoms {
    /// Computes post-dominators of a CFG.
    pub fn compute(cfg: &Cfg) -> Self {
        let (graph, vexit) = Graph::from_cfg_with_virtual_exit(cfg);
        BlockPostDoms {
            tree: DomTree::compute_reversed(&graph, vexit),
            virtual_exit: vexit,
        }
    }

    /// Returns `true` if `a` post-dominates `b` (reflexively).
    pub fn postdominates(&self, a: BlockId, b: BlockId) -> bool {
        self.tree.dominates(a.index(), b.index())
    }

    /// Returns the immediate post-dominator of `b`; `None` when it is the
    /// virtual exit (i.e. for return blocks and diverging merge points).
    pub fn ipostdom(&self, b: BlockId) -> Option<BlockId> {
        match self.tree.idom(b.index()) {
            Some(i) if i != self.virtual_exit && i != b.index() => Some(BlockId::from_index(i)),
            _ => None,
        }
    }

    /// Returns the underlying generic tree (nodes: blocks plus the virtual
    /// exit at index [`Self::virtual_exit_index`]).
    pub fn tree(&self) -> &DomTree {
        &self.tree
    }

    /// Returns the index of the virtual exit node.
    pub fn virtual_exit_index(&self) -> usize {
        self.virtual_exit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 4; plus back edge 4 -> 1.
    fn graph() -> Graph {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 1);
        g
    }

    #[test]
    fn idoms_of_diamond_with_loop() {
        let t = DomTree::compute(&graph(), 0);
        assert_eq!(t.idom(0), Some(0));
        assert_eq!(t.idom(1), Some(0));
        assert_eq!(t.idom(2), Some(0));
        assert_eq!(t.idom(3), Some(0)); // 1 and 2 both reach 3
        assert_eq!(t.idom(4), Some(3));
    }

    #[test]
    fn dominance_queries() {
        let t = DomTree::compute(&graph(), 0);
        assert!(t.dominates(0, 4));
        assert!(t.dominates(3, 4));
        assert!(!t.dominates(1, 3));
        assert!(t.dominates(3, 3));
        assert!(t.strictly_dominates(0, 3));
        assert!(!t.strictly_dominates(3, 3));
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.depth(4), 2);
    }

    #[test]
    fn unreachable_nodes() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        let t = DomTree::compute(&g, 0);
        assert!(!t.is_reachable(2));
        assert!(!t.dominates(0, 2));
        assert!(!t.dominates(2, 0));
        assert_eq!(t.idom(2), None);
    }

    /// Exhaustive dominance oracle: a dom b iff removing a disconnects b
    /// from the root.
    fn oracle_dominates(g: &Graph, root: usize, a: usize, b: usize) -> bool {
        if a == b {
            return reachable(g, root, b, None);
        }
        reachable(g, root, b, None) && !reachable(g, root, b, Some(a))
    }

    fn reachable(g: &Graph, from: usize, to: usize, skip: Option<usize>) -> bool {
        if Some(from) == skip {
            return false;
        }
        let mut seen = vec![false; g.num_nodes()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(u) = stack.pop() {
            if u == to {
                return true;
            }
            for &v in g.succs(u) {
                let v = v as usize;
                if Some(v) != skip && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        false
    }

    #[test]
    fn matches_oracle_on_fixed_graphs() {
        for g in [graph(), {
            let mut g = Graph::new(7);
            // An irreducible-ish mess.
            g.add_edge(0, 1);
            g.add_edge(0, 2);
            g.add_edge(1, 3);
            g.add_edge(2, 3);
            g.add_edge(3, 1);
            g.add_edge(3, 4);
            g.add_edge(4, 5);
            g.add_edge(5, 4);
            g.add_edge(4, 6);
            g.add_edge(2, 6);
            g
        }] {
            let t = DomTree::compute(&g, 0);
            for a in 0..g.num_nodes() {
                for b in 0..g.num_nodes() {
                    assert_eq!(
                        t.dominates(a, b),
                        oracle_dominates(&g, 0, a, b),
                        "dominates({a},{b}) mismatch"
                    );
                }
            }
        }
    }
}
