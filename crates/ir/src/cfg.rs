//! Control-flow graph snapshot: edges with fall-through/jump
//! classification.
//!
//! The paper's jump-edge cost model hinges on the distinction between
//! *jump edges* ("an edge initiated by a control flow instruction whose
//! target is not the next sequential instruction") and fall-through edges,
//! and on whether an edge is *critical* (source has multiple successors and
//! target has multiple predecessors): spill code on a critical jump edge
//! requires a new jump block containing an extra jump instruction, while
//! critical fall-through edges can host a layout-inserted block with no
//! extra jump, and non-critical edges can host code inside an existing
//! block.

use crate::function::Function;
use crate::ids::{BlockId, EdgeId};
use crate::inst::InstKind;

/// Classification of a CFG edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EdgeKind {
    /// Control continues to the next block in layout (branch not-taken,
    /// implicit fall-through, or a jump to the adjacent block).
    Fall,
    /// Control transfers via a taken branch or a jump to a non-adjacent
    /// block.
    Jump,
}

/// Which successor slot of the terminator produced an edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SuccPos {
    /// The only successor (unconditional jump or implicit fall-through).
    Only,
    /// The taken target of a conditional branch.
    Taken,
    /// The fall-through target of a conditional branch.
    NotTaken,
}

/// A directed CFG edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CfgEdge {
    /// Source block.
    pub from: BlockId,
    /// Destination block.
    pub to: BlockId,
    /// Fall-through or jump.
    pub kind: EdgeKind,
    /// Which successor slot of `from`'s terminator this edge is.
    pub pos: SuccPos,
}

/// An immutable CFG snapshot of a [`Function`].
///
/// Edge ids are stable only for this snapshot; any CFG edit invalidates
/// them (recompute with [`Cfg::compute`]).
#[derive(Clone, Debug)]
pub struct Cfg {
    edges: Vec<CfgEdge>,
    succs: Vec<Vec<EdgeId>>,
    preds: Vec<Vec<EdgeId>>,
    entry: BlockId,
    exit_blocks: Vec<BlockId>,
}

impl Cfg {
    /// Computes the CFG of `func`.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks. Malformed functions (checked
    /// by [`verify_function`](crate::verify::verify_function)) may produce
    /// a malformed CFG; verify first.
    pub fn compute(func: &Function) -> Self {
        let n = func.num_blocks();
        let mut edges = Vec::new();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut exit_blocks = Vec::new();

        for b in func.block_ids() {
            let block = func.block(b);
            let next = func.layout_next(b);
            let mut push = |edges: &mut Vec<CfgEdge>, to: BlockId, kind: EdgeKind, pos: SuccPos| {
                let id = EdgeId::from_index(edges.len());
                edges.push(CfgEdge {
                    from: b,
                    to,
                    kind,
                    pos,
                });
                succs[b.index()].push(id);
                preds[to.index()].push(id);
            };
            match block.terminator().map(|t| &t.kind) {
                Some(InstKind::Jump { target }) => {
                    // A jump to the adjacent block reaches "the next
                    // sequential instruction": not a jump edge by the
                    // paper's definition.
                    let kind = if next == Some(*target) {
                        EdgeKind::Fall
                    } else {
                        EdgeKind::Jump
                    };
                    push(&mut edges, *target, kind, SuccPos::Only);
                }
                Some(InstKind::Branch {
                    taken, fallthrough, ..
                }) => {
                    push(&mut edges, *taken, EdgeKind::Jump, SuccPos::Taken);
                    push(&mut edges, *fallthrough, EdgeKind::Fall, SuccPos::NotTaken);
                }
                Some(InstKind::Return { .. }) => {
                    exit_blocks.push(b);
                }
                Some(_) => unreachable!("non-terminator returned by terminator()"),
                None => {
                    let target = next.expect("fall-through block must not be last in layout");
                    push(&mut edges, target, EdgeKind::Fall, SuccPos::Only);
                }
            }
        }

        Cfg {
            edges,
            succs,
            preds,
            entry: func.entry(),
            exit_blocks,
        }
    }

    /// Returns the entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Returns the blocks ending in `Return`.
    pub fn exit_blocks(&self) -> &[BlockId] {
        &self.exit_blocks
    }

    /// Returns the number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    /// Returns the number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns the edge with the given id.
    pub fn edge(&self, id: EdgeId) -> &CfgEdge {
        &self.edges[id.index()]
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::from_index)
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &CfgEdge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::from_index(i), e))
    }

    /// Returns the outgoing edge ids of `b`.
    pub fn succ_edges(&self, b: BlockId) -> &[EdgeId] {
        &self.succs[b.index()]
    }

    /// Returns the incoming edge ids of `b`.
    pub fn pred_edges(&self, b: BlockId) -> &[EdgeId] {
        &self.preds[b.index()]
    }

    /// Iterates over the successor blocks of `b`.
    pub fn succ_blocks(&self, b: BlockId) -> impl Iterator<Item = BlockId> + '_ {
        self.succs[b.index()].iter().map(|&e| self.edge(e).to)
    }

    /// Iterates over the predecessor blocks of `b`.
    pub fn pred_blocks(&self, b: BlockId) -> impl Iterator<Item = BlockId> + '_ {
        self.preds[b.index()].iter().map(|&e| self.edge(e).from)
    }

    /// Returns the number of successors of `b`.
    pub fn num_succs(&self, b: BlockId) -> usize {
        self.succs[b.index()].len()
    }

    /// Returns the number of predecessors of `b`.
    pub fn num_preds(&self, b: BlockId) -> usize {
        self.preds[b.index()].len()
    }

    /// Returns the unique edge from `from` to `to`, if it exists.
    ///
    /// The IR forbids parallel edges (a branch with equal targets must be a
    /// jump), so the result is unique.
    pub fn edge_between(&self, from: BlockId, to: BlockId) -> Option<EdgeId> {
        self.succs[from.index()]
            .iter()
            .copied()
            .find(|&e| self.edge(e).to == to)
    }

    /// Returns `true` if the edge is critical: its source has multiple
    /// successors and its target multiple predecessors. Spill code cannot
    /// be sunk into either endpoint of a critical edge.
    ///
    /// The procedure entry counts as an implicit predecessor of the entry
    /// block: an edge looping back to the entry block can never sink its
    /// code into the entry's top (that code would also execute on the
    /// initial entry), so such edges are critical even with a single
    /// explicit predecessor.
    pub fn is_critical(&self, e: EdgeId) -> bool {
        let edge = self.edge(e);
        self.num_succs(edge.from) > 1 && (self.num_preds(edge.to) > 1 || edge.to == self.entry())
    }

    /// Returns `true` if placing code on this edge requires a new jump
    /// block *with an extra jump instruction*: exactly the critical jump
    /// edges. (Critical fall-through edges get a layout-inserted block
    /// with no extra jump.)
    pub fn needs_jump_block(&self, e: EdgeId) -> bool {
        self.is_critical(e) && self.edge(e).kind == EdgeKind::Jump
    }

    /// Returns the blocks reachable from the entry.
    pub fn reachable_blocks(&self) -> crate::bitset::DenseBitSet {
        let mut seen = crate::bitset::DenseBitSet::new(self.num_blocks());
        let mut stack = vec![self.entry];
        seen.insert(self.entry.index());
        while let Some(b) = stack.pop() {
            for s in self.succ_blocks(b) {
                if seen.insert(s.index()) {
                    stack.push(s);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ids::Reg;
    use crate::inst::Cond;

    /// Builds the diamond
    /// ```text
    ///   A -> B (fall), A -> C (jump/taken)
    ///   B -> D (jump), C -> D (fall)
    /// ```
    fn diamond() -> (Function, BlockId, BlockId, BlockId, BlockId) {
        let mut fb = FunctionBuilder::new("diamond", 0);
        let a = fb.create_block(Some("A"));
        let b = fb.create_block(Some("B"));
        let c = fb.create_block(Some("C"));
        let d = fb.create_block(Some("D"));
        fb.switch_to(a);
        let x = fb.li(1);
        let y = fb.li(2);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(y), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        // C falls through to D.
        fb.switch_to(d);
        fb.ret(None);
        (fb.finish(), a, b, c, d)
    }

    use crate::function::Function;

    #[test]
    fn edge_kinds_and_positions() {
        let (f, a, b, c, d) = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.num_edges(), 4);
        let ab = cfg.edge_between(a, b).unwrap();
        let ac = cfg.edge_between(a, c).unwrap();
        let bd = cfg.edge_between(b, d).unwrap();
        let cd = cfg.edge_between(c, d).unwrap();
        assert_eq!(cfg.edge(ab).kind, EdgeKind::Fall);
        assert_eq!(cfg.edge(ab).pos, SuccPos::NotTaken);
        assert_eq!(cfg.edge(ac).kind, EdgeKind::Jump);
        assert_eq!(cfg.edge(ac).pos, SuccPos::Taken);
        assert_eq!(cfg.edge(bd).kind, EdgeKind::Jump);
        assert_eq!(cfg.edge(cd).kind, EdgeKind::Fall);
        assert_eq!(cfg.exit_blocks(), &[d]);
        assert_eq!(cfg.entry(), a);
    }

    #[test]
    fn criticality() {
        let (f, a, b, c, d) = diamond();
        let cfg = Cfg::compute(&f);
        // A has 2 succs but B and C each have 1 pred: not critical.
        assert!(!cfg.is_critical(cfg.edge_between(a, b).unwrap()));
        assert!(!cfg.is_critical(cfg.edge_between(a, c).unwrap()));
        // B and C have 1 succ each: not critical.
        assert!(!cfg.is_critical(cfg.edge_between(b, d).unwrap()));
        assert!(!cfg.is_critical(cfg.edge_between(c, d).unwrap()));
        assert!(!cfg.needs_jump_block(cfg.edge_between(b, d).unwrap()));
    }

    #[test]
    fn jump_to_adjacent_block_is_fall() {
        let mut fb = FunctionBuilder::new("seq", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        fb.switch_to(a);
        fb.jump(b);
        fb.switch_to(b);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        assert_eq!(
            cfg.edge(cfg.edge_between(a, b).unwrap()).kind,
            EdgeKind::Fall
        );
    }

    #[test]
    fn preds_succs_counts() {
        let (f, a, _b, _c, d) = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.num_succs(a), 2);
        assert_eq!(cfg.num_preds(a), 0);
        assert_eq!(cfg.num_preds(d), 2);
        assert_eq!(cfg.num_succs(d), 0);
        assert_eq!(cfg.succ_blocks(a).count(), 2);
    }

    #[test]
    fn reachability() {
        let (f, ..) = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.reachable_blocks().count(), 4);
    }
}
