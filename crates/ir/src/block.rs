//! Basic blocks.

use crate::inst::Inst;

/// A basic block: a straight-line sequence of instructions.
///
/// A block may end with an explicit terminator (jump, branch, or return) or
/// with no terminator at all, in which case control *falls through* to the
/// next block in the function's layout order. Fall-through blocks are what
/// allow spill code to be inserted on critical fall-through edges without an
/// extra jump instruction, which the paper's jump-edge cost model depends
/// on.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Block {
    /// Optional human-readable name (e.g. `A`..`P` in the paper's worked
    /// example). Purely cosmetic.
    pub name: Option<String>,
    /// The instructions of the block, in execution order.
    pub insts: Vec<Inst>,
}

impl Block {
    /// Creates an empty, unnamed block.
    pub fn new() -> Self {
        Block::default()
    }

    /// Creates an empty block with a cosmetic name.
    pub fn with_name(name: impl Into<String>) -> Self {
        Block {
            name: Some(name.into()),
            insts: Vec::new(),
        }
    }

    /// Returns the terminator instruction, or `None` for a fall-through
    /// block.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.is_terminator())
    }

    /// Returns the terminator instruction mutably, or `None` for a
    /// fall-through block.
    pub fn terminator_mut(&mut self) -> Option<&mut Inst> {
        self.insts.last_mut().filter(|i| i.is_terminator())
    }

    /// Returns `true` if the block ends by falling through to the next
    /// block in layout.
    pub fn falls_through(&self) -> bool {
        self.terminator().is_none()
    }

    /// Returns the number of non-terminator ("body") instructions.
    pub fn body_len(&self) -> usize {
        self.insts.len() - usize::from(self.terminator().is_some())
    }

    /// Returns the index at which code placed "at the bottom" of the block
    /// (before the terminator, if any) should be inserted.
    pub fn bottom_index(&self) -> usize {
        self.body_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BlockId, Reg, VReg};
    use crate::inst::{Inst, InstKind};

    fn v(i: usize) -> Reg {
        Reg::Virt(VReg::from_index(i))
    }

    #[test]
    fn terminator_detection() {
        let mut b = Block::with_name("A");
        assert!(b.falls_through());
        assert_eq!(b.body_len(), 0);
        b.insts.push(Inst::new(InstKind::Move {
            dst: v(0),
            src: v(1),
        }));
        assert!(b.falls_through());
        assert_eq!(b.bottom_index(), 1);
        b.insts.push(Inst::new(InstKind::Jump {
            target: BlockId::from_index(0),
        }));
        assert!(!b.falls_through());
        assert!(b.terminator().is_some());
        assert_eq!(b.body_len(), 1);
        assert_eq!(b.bottom_index(), 1);
    }
}
