//! Derived CFG structures, computed once per function and reused by
//! every analysis and placement technique.
//!
//! The [`Cfg`] snapshot stores adjacency as one `Vec<EdgeId>` per block —
//! convenient to build, but a cache miss per block on traversal-heavy
//! paths, and every pass that needs an order, an exit test, or an edge
//! classification recomputed it locally. [`DerivedCfg`] flattens all of
//! that into dense, index-addressed tables:
//!
//! * predecessor/successor adjacency in CSR form (one offsets array, one
//!   contiguous edge-id array each);
//! * reverse postorder and postorder over the reachable blocks;
//! * per-edge classification bits (critical, jump, needs-jump-block) and
//!   flat endpoint arrays;
//! * a per-block exit flag (terminator is a return).
//!
//! Everything here is a pure function of the CFG; the driver's analysis
//! cache computes one `DerivedCfg` per function and shares it across the
//! profiler, the bit-parallel solver, the hierarchical traversal, and
//! the validator.

use crate::bitset::DenseBitSet;
use crate::cfg::{Cfg, EdgeKind};
use crate::ids::{BlockId, EdgeId};

/// Compressed-sparse-row adjacency: the edge ids of block `b` occupy
/// `items[offsets[b] .. offsets[b + 1]]`.
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<u32>,
    items: Vec<u32>,
}

impl Csr {
    /// The edge ids adjacent to block `b`.
    pub fn row(&self, b: usize) -> &[u32] {
        &self.items[self.offsets[b] as usize..self.offsets[b + 1] as usize]
    }

    /// Number of rows (blocks).
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// Dense, flat derived structures of one [`Cfg`] snapshot.
#[derive(Clone, Debug)]
pub struct DerivedCfg {
    /// Successor edge ids per block, CSR.
    pub succ: Csr,
    /// Predecessor edge ids per block, CSR.
    pub pred: Csr,
    /// Edge sources, indexed by [`EdgeId`].
    pub edge_from: Vec<u32>,
    /// Edge targets, indexed by [`EdgeId`].
    pub edge_to: Vec<u32>,
    /// Blocks in reverse postorder from the entry (reachable blocks
    /// only).
    pub rpo: Vec<u32>,
    /// Per-edge: the edge is critical (see [`Cfg::is_critical`]).
    pub critical: DenseBitSet,
    /// Per-edge: spill code here needs a jump block with an extra jump
    /// (see [`Cfg::needs_jump_block`]).
    pub needs_jump: DenseBitSet,
    /// Per-edge: the edge is a jump edge (taken branch or non-adjacent
    /// jump).
    pub jump: DenseBitSet,
    /// Per-block: the block ends in a return.
    pub is_exit: Vec<bool>,
}

impl DerivedCfg {
    /// Computes every derived table of `cfg` in O(blocks + edges).
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.num_blocks();
        let m = cfg.num_edges();

        let mut edge_from = Vec::with_capacity(m);
        let mut edge_to = Vec::with_capacity(m);
        for (_, e) in cfg.edges() {
            edge_from.push(e.from.index() as u32);
            edge_to.push(e.to.index() as u32);
        }

        let mut succ_offsets = Vec::with_capacity(n + 1);
        let mut succ_items = Vec::with_capacity(m);
        let mut pred_offsets = Vec::with_capacity(n + 1);
        let mut pred_items = Vec::with_capacity(m);
        succ_offsets.push(0);
        pred_offsets.push(0);
        for bi in 0..n {
            let b = BlockId::from_index(bi);
            for &e in cfg.succ_edges(b) {
                succ_items.push(e.index() as u32);
            }
            succ_offsets.push(succ_items.len() as u32);
            for &e in cfg.pred_edges(b) {
                pred_items.push(e.index() as u32);
            }
            pred_offsets.push(pred_items.len() as u32);
        }
        let succ = Csr {
            offsets: succ_offsets,
            items: succ_items,
        };
        let pred = Csr {
            offsets: pred_offsets,
            items: pred_items,
        };

        // Reverse postorder via an iterative DFS over the CSR.
        let mut rpo = Vec::with_capacity(n);
        {
            let mut seen = vec![false; n];
            let mut stack: Vec<(u32, u32)> = vec![(cfg.entry().index() as u32, 0)];
            seen[cfg.entry().index()] = true;
            while let Some(&mut (b, ref mut ci)) = stack.last_mut() {
                let row = succ.row(b as usize);
                if (*ci as usize) < row.len() {
                    let e = row[*ci as usize] as usize;
                    *ci += 1;
                    let t = edge_to[e] as usize;
                    if !seen[t] {
                        seen[t] = true;
                        stack.push((t as u32, 0));
                    }
                } else {
                    rpo.push(b);
                    stack.pop();
                }
            }
            rpo.reverse();
        }

        let mut critical = DenseBitSet::new(m);
        let mut needs_jump = DenseBitSet::new(m);
        let mut jump = DenseBitSet::new(m);
        for (id, e) in cfg.edges() {
            let i = id.index();
            if e.kind == EdgeKind::Jump {
                jump.insert(i);
            }
            if cfg.is_critical(id) {
                critical.insert(i);
                if e.kind == EdgeKind::Jump {
                    needs_jump.insert(i);
                }
            }
        }

        let mut is_exit = vec![false; n];
        for &b in cfg.exit_blocks() {
            is_exit[b.index()] = true;
        }

        DerivedCfg {
            succ,
            pred,
            edge_from,
            edge_to,
            rpo,
            critical,
            needs_jump,
            jump,
            is_exit,
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.is_exit.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edge_from.len()
    }

    /// The blocks of [`DerivedCfg::rpo`] in postorder (successors before
    /// predecessors) — the fast-converging order for backward dataflow.
    pub fn postorder(&self) -> impl DoubleEndedIterator<Item = usize> + '_ {
        self.rpo.iter().rev().map(|&b| b as usize)
    }

    /// `true` if `e` needs a jump block (critical jump edge).
    pub fn edge_needs_jump(&self, e: EdgeId) -> bool {
        self.needs_jump.contains(e.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ids::Reg;
    use crate::inst::Cond;

    #[test]
    fn tables_agree_with_cfg_queries() {
        // Diamond with a loop-back edge to create critical jump edges.
        let mut fb = FunctionBuilder::new("d", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        let e = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.branch(Cond::Gt, Reg::Virt(x), Reg::Virt(x), b, e);
        fb.switch_to(e);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let derived = DerivedCfg::compute(&cfg);

        assert_eq!(derived.num_blocks(), cfg.num_blocks());
        assert_eq!(derived.num_edges(), cfg.num_edges());
        for (id, edge) in cfg.edges() {
            let i = id.index();
            assert_eq!(derived.edge_from[i] as usize, edge.from.index());
            assert_eq!(derived.edge_to[i] as usize, edge.to.index());
            assert_eq!(derived.critical.contains(i), cfg.is_critical(id));
            assert_eq!(derived.needs_jump.contains(i), cfg.needs_jump_block(id));
            assert_eq!(derived.jump.contains(i), edge.kind == EdgeKind::Jump);
            assert_eq!(derived.edge_needs_jump(id), cfg.needs_jump_block(id));
        }
        for bi in 0..cfg.num_blocks() {
            let blk = BlockId::from_index(bi);
            let succs: Vec<usize> = cfg.succ_edges(blk).iter().map(|e| e.index()).collect();
            let got: Vec<usize> = derived.succ.row(bi).iter().map(|&e| e as usize).collect();
            assert_eq!(succs, got);
            let preds: Vec<usize> = cfg.pred_edges(blk).iter().map(|e| e.index()).collect();
            let got: Vec<usize> = derived.pred.row(bi).iter().map(|&e| e as usize).collect();
            assert_eq!(preds, got);
            assert_eq!(derived.is_exit[bi], cfg.exit_blocks().contains(&blk));
        }
        assert_eq!(derived.succ.num_rows(), cfg.num_blocks());

        // RPO starts at the entry, covers every reachable block, and
        // postorder() is its exact reverse.
        assert_eq!(derived.rpo[0] as usize, cfg.entry().index());
        assert_eq!(derived.rpo.len(), cfg.reachable_blocks().count());
        let po: Vec<usize> = derived.postorder().collect();
        let mut rev = po.clone();
        rev.reverse();
        assert_eq!(
            rev,
            derived.rpo.iter().map(|&b| b as usize).collect::<Vec<_>>()
        );
    }
}
