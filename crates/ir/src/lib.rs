//! # spillopt-ir
//!
//! Machine-level IR and CFG substrate for the *spillopt* reproduction of
//! Lupo & Wilken, "Post Register Allocation Spill Code Optimization"
//! (CGO 2006).
//!
//! The paper's pass operates on a compiled procedure after register
//! allocation; this crate provides everything such a procedure needs:
//!
//! * a RISC-like three-address IR ([`InstKind`]) usable before register
//!   allocation (virtual registers) and after (physical registers), with
//!   instruction provenance tags ([`Origin`]) so that dynamic *spill code
//!   overhead* can be attributed exactly as in the paper's Figure 5;
//! * functions with an explicit block **layout order** ([`Function`]),
//!   from which fall-through vs. **jump edges** are classified
//!   ([`Cfg`]) — the distinction at the heart of the paper's jump-edge
//!   cost model;
//! * CFG editing primitives ([`edit`]) that realize spill code on edges,
//!   inserting **jump blocks** exactly when the paper's model says a jump
//!   instruction is needed;
//! * analyses: dominators/post-dominators, natural loops and SCCs,
//!   liveness ([`analysis`]);
//! * a text format with printer and parser ([`display`], [`parse`]), a
//!   structural verifier ([`verify`]), and a builder API ([`FunctionBuilder`]).
//!
//! # Examples
//!
//! ```
//! use spillopt_ir::{Cfg, Cond, EdgeKind, FunctionBuilder, Reg};
//!
//! let mut fb = FunctionBuilder::new("count", 0);
//! let entry = fb.create_block(Some("entry"));
//! let body = fb.create_block(Some("body"));
//! let exit = fb.create_block(Some("exit"));
//! fb.switch_to(entry);
//! let i = fb.li(0);
//! let n = fb.li(100);
//! fb.branch(Cond::Ge, Reg::Virt(i), Reg::Virt(n), exit, body);
//! fb.switch_to(body);
//! fb.jump(exit);
//! fb.switch_to(exit);
//! fb.ret(None);
//! let func = fb.finish();
//!
//! let cfg = Cfg::compute(&func);
//! let e = cfg.edge_between(entry, exit).unwrap();
//! assert_eq!(cfg.edge(e).kind, EdgeKind::Jump); // taken edge = jump edge
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod bitset;
pub mod block;
pub mod builder;
pub mod cfg;
pub mod derived;
pub mod display;
pub mod edit;
pub mod function;
pub mod ids;
pub mod inst;
pub mod module;
pub mod parse;
pub mod target;
pub mod verify;

pub use analysis::{BlockDoms, BlockPostDoms, Graph, Liveness, LoopInfo, RegUniverse};
pub use bitset::{BitMatrix, DenseBitSet, UnionFind};
pub use block::Block;
pub use builder::FunctionBuilder;
pub use cfg::{Cfg, CfgEdge, EdgeKind, SuccPos};
pub use derived::{Csr, DerivedCfg};
pub use edit::{insert_at_bottom, insert_at_top, place_on_edge, EdgePlacement};
pub use function::{FrameInfo, Function};
pub use ids::{BlockId, EdgeId, FrameSlot, FuncId, PReg, Reg, VReg};
pub use inst::{BinOp, Callee, Cond, Inst, InstKind, MemKind, Origin};
pub use module::Module;
pub use parse::{parse_function, parse_module, parse_module_traced, ParseError, SourceMap};
pub use target::{Target, TargetError};
pub use verify::{assert_valid, verify_function, verify_module, RegDiscipline, VerifyError};
