//! A dense fixed-capacity bit set used by the dataflow analyses.

use std::fmt;

/// A dense bit set over `0..len`.
///
/// This is the workhorse of liveness and other dataflow analyses; it stores
/// one bit per entity in a `Vec<u64>`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DenseBitSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitSet {
    /// Creates an empty set with capacity for `len` elements.
    pub fn new(len: usize) -> Self {
        DenseBitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Returns the capacity (number of addressable elements).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `i`, returning `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `i`, returning `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Returns `true` if `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Returns the number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Unions `other` into `self`, returning `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Intersects `other` into `self`, returning `true` if `self` changed.
    pub fn intersect_with(&mut self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Removes all elements of `other` from `self`, returning `true` if
    /// `self` changed.
    pub fn subtract(&mut self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & !b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Returns `true` if `self` and `other` share no elements.
    pub fn is_disjoint(&self, other: &DenseBitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            word: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for DenseBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for DenseBitSet {
    /// Collects indices into a set sized to fit the largest one.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut set = DenseBitSet::new(cap);
        for i in items {
            set.insert(i);
        }
        set
    }
}

impl Extend<usize> for DenseBitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over the elements of a [`DenseBitSet`], in ascending order.
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a DenseBitSet,
    word_idx: usize,
    word: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.word != 0 {
                let bit = self.word.trailing_zeros() as usize;
                self.word &= self.word - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.word = self.set.words[self.word_idx];
        }
    }
}

/// A union-find (disjoint set) structure over dense indices.
///
/// Used for save/restore web grouping and coalescing.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`, returning `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = DenseBitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn iter_ascending() {
        let mut s = DenseBitSet::new(200);
        for i in [3, 199, 64, 65, 0] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 3, 64, 65, 199]);
    }

    #[test]
    fn union_intersect_subtract() {
        let mut a = DenseBitSet::new(100);
        let mut b = DenseBitSet::new(100);
        a.extend([1, 2, 3]);
        b.extend([3, 4]);
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert!(!u.union_with(&b));

        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);

        let mut d = a.clone();
        assert!(d.subtract(&b));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(i.is_subset(&a));
        assert!(!a.is_subset(&i));
    }

    #[test]
    fn disjoint() {
        let mut a = DenseBitSet::new(10);
        let mut b = DenseBitSet::new(10);
        a.insert(1);
        b.insert(2);
        assert!(a.is_disjoint(&b));
        b.insert(1);
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn from_iterator() {
        let s: DenseBitSet = [5usize, 9, 2].into_iter().collect();
        assert!(s.contains(5) && s.contains(9) && s.contains(2));
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    fn empty_set_behaviour() {
        let s = DenseBitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(3));
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert!(uf.same_set(0, 1));
        assert!(!uf.same_set(1, 2));
        uf.union(1, 3);
        assert!(uf.same_set(0, 2));
        assert!(!uf.same_set(4, 5));
        assert_eq!(uf.len(), 6);
    }
}
