//! A dense fixed-capacity bit set used by the dataflow analyses.

use std::fmt;

/// A dense bit set over `0..len`.
///
/// This is the workhorse of liveness and other dataflow analyses; it stores
/// one bit per entity in a `Vec<u64>`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DenseBitSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitSet {
    /// Creates an empty set with capacity for `len` elements.
    pub fn new(len: usize) -> Self {
        DenseBitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Returns the capacity (number of addressable elements).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `i`, returning `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `i`, returning `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Returns `true` if `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Returns the number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Unions `other` into `self`, returning `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Intersects `other` into `self`, returning `true` if `self` changed.
    pub fn intersect_with(&mut self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Removes all elements of `other` from `self`, returning `true` if
    /// `self` changed.
    pub fn subtract(&mut self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & !b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Returns `true` if `self` and `other` share no elements.
    pub fn is_disjoint(&self, other: &DenseBitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &DenseBitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            word: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Word-scanning iterator over the set bits, in ascending order.
    ///
    /// Identical to [`DenseBitSet::iter`]; the name makes call sites on
    /// hot paths self-documenting (the iterator skips zero words a word
    /// at a time instead of probing bit by bit).
    pub fn iter_ones(&self) -> Iter<'_> {
        self.iter()
    }

    /// The backing words, least-significant bit first. Bits at and above
    /// `capacity()` are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Overwrites `self` with the contents of `other` without
    /// reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn copy_from(&mut self, other: &DenseBitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Unions `a \ b` into `self` in one fused pass, returning `true` if
    /// `self` changed. This is the transfer function of backward liveness
    /// (`in |= out \ kill`) as a single word loop.
    ///
    /// # Panics
    ///
    /// Panics if any capacity differs.
    pub fn union_with_subtracted(&mut self, a: &DenseBitSet, b: &DenseBitSet) -> bool {
        assert_eq!(self.len, a.len, "bitset capacity mismatch");
        assert_eq!(self.len, b.len, "bitset capacity mismatch");
        let mut changed = false;
        for ((dst, x), y) in self.words.iter_mut().zip(&a.words).zip(&b.words) {
            let next = *dst | (x & !y);
            changed |= next != *dst;
            *dst = next;
        }
        changed
    }

    /// Sets `self` to `a ∩ b` in one pass, without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if any capacity differs.
    pub fn set_to_intersection(&mut self, a: &DenseBitSet, b: &DenseBitSet) {
        assert_eq!(self.len, a.len, "bitset capacity mismatch");
        assert_eq!(self.len, b.len, "bitset capacity mismatch");
        for ((dst, x), y) in self.words.iter_mut().zip(&a.words).zip(&b.words) {
            *dst = x & y;
        }
    }
}

impl fmt::Debug for DenseBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for DenseBitSet {
    /// Collects indices into a set sized to fit the largest one.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut set = DenseBitSet::new(cap);
        for i in items {
            set.insert(i);
        }
        set
    }
}

impl Extend<usize> for DenseBitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over the elements of a [`DenseBitSet`], in ascending order.
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a DenseBitSet,
    word_idx: usize,
    word: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.word != 0 {
                let bit = self.word.trailing_zeros() as usize;
                self.word &= self.word - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.word = self.set.words[self.word_idx];
        }
    }
}

/// A dense 2-D bit matrix: `rows` rows of `cols` bits each, stored in one
/// contiguous word array (one allocation, row-major).
///
/// The interference graph and the coloring pass index it as adjacency;
/// row operations are word-parallel.
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    words: Vec<u64>,
    words_per_row: usize,
    rows: usize,
    cols: usize,
}

impl BitMatrix {
    /// Creates an all-zero matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        BitMatrix {
            words: vec![0; rows * words_per_row],
            words_per_row,
            rows,
            cols,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Sets bit `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize) {
        debug_assert!(r < self.rows && c < self.cols);
        self.words[r * self.words_per_row + c / 64] |= 1 << (c % 64);
    }

    /// Clears bit `(r, c)`.
    pub fn unset(&mut self, r: usize, c: usize) {
        debug_assert!(r < self.rows && c < self.cols);
        self.words[r * self.words_per_row + c / 64] &= !(1 << (c % 64));
    }

    /// Returns bit `(r, c)`.
    pub fn contains(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        self.words[r * self.words_per_row + c / 64] & (1 << (c % 64)) != 0
    }

    /// The words of row `r`.
    pub fn row_words(&self, r: usize) -> &[u64] {
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// ORs `src`'s words into row `r` (lengths must match).
    ///
    /// # Panics
    ///
    /// Panics if `src` has a different word count than a row.
    pub fn row_union_words(&mut self, r: usize, src: &[u64]) {
        let row = &mut self.words[r * self.words_per_row..(r + 1) * self.words_per_row];
        assert_eq!(row.len(), src.len(), "row width mismatch");
        for (a, b) in row.iter_mut().zip(src) {
            *a |= b;
        }
    }

    /// ORs row `src` of `other` into row `r` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if the row widths differ.
    pub fn row_union_row(&mut self, r: usize, other: &BitMatrix, src: usize) {
        assert_eq!(
            self.words_per_row, other.words_per_row,
            "row width mismatch"
        );
        let s = &other.words[src * other.words_per_row..(src + 1) * other.words_per_row];
        let d = &mut self.words[r * self.words_per_row..(r + 1) * self.words_per_row];
        for (a, b) in d.iter_mut().zip(s) {
            *a |= b;
        }
    }

    /// ORs row `src` into row `dst` of the same matrix (no-op when they
    /// are the same row).
    pub fn row_union_row_within(&mut self, dst: usize, src: usize) {
        if dst == src {
            return;
        }
        let wpr = self.words_per_row;
        let (d0, s0) = (dst * wpr, src * wpr);
        if d0 < s0 {
            let (a, b) = self.words.split_at_mut(s0);
            for (x, y) in a[d0..d0 + wpr].iter_mut().zip(&b[..wpr]) {
                *x |= *y;
            }
        } else {
            let (a, b) = self.words.split_at_mut(d0);
            for (x, y) in b[..wpr].iter_mut().zip(&a[s0..s0 + wpr]) {
                *x |= *y;
            }
        }
    }

    /// Number of set bits in row `r`.
    pub fn row_count(&self, r: usize) -> usize {
        self.row_words(r)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Iterates the set columns of row `r` in ascending order.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        RowIter {
            words: self.row_words(r),
            word_idx: 0,
            word: self.row_words(r).first().copied().unwrap_or(0),
        }
    }

    /// Clears row `r`.
    pub fn row_clear(&mut self, r: usize) {
        self.words[r * self.words_per_row..(r + 1) * self.words_per_row].fill(0);
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_map();
        for r in 0..self.rows {
            d.entry(&r, &self.row_iter(r).collect::<Vec<_>>());
        }
        d.finish()
    }
}

/// Iterator over the set columns of one [`BitMatrix`] row.
#[derive(Debug)]
struct RowIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    word: u64,
}

impl Iterator for RowIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.word != 0 {
                let bit = self.word.trailing_zeros() as usize;
                self.word &= self.word - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.word = self.words[self.word_idx];
        }
    }
}

/// A union-find (disjoint set) structure over dense indices.
///
/// Used for save/restore web grouping and coalescing.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`, returning `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = DenseBitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn iter_ascending() {
        let mut s = DenseBitSet::new(200);
        for i in [3, 199, 64, 65, 0] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 3, 64, 65, 199]);
    }

    #[test]
    fn union_intersect_subtract() {
        let mut a = DenseBitSet::new(100);
        let mut b = DenseBitSet::new(100);
        a.extend([1, 2, 3]);
        b.extend([3, 4]);
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert!(!u.union_with(&b));

        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);

        let mut d = a.clone();
        assert!(d.subtract(&b));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(i.is_subset(&a));
        assert!(!a.is_subset(&i));
    }

    #[test]
    fn disjoint() {
        let mut a = DenseBitSet::new(10);
        let mut b = DenseBitSet::new(10);
        a.insert(1);
        b.insert(2);
        assert!(a.is_disjoint(&b));
        b.insert(1);
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn from_iterator() {
        let s: DenseBitSet = [5usize, 9, 2].into_iter().collect();
        assert!(s.contains(5) && s.contains(9) && s.contains(2));
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    fn empty_set_behaviour() {
        let s = DenseBitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(3));
    }

    #[test]
    fn word_ops() {
        let mut a = DenseBitSet::new(130);
        a.extend([0, 64, 129]);
        assert_eq!(a.words().len(), 3);
        assert_eq!(a.words()[0], 1);
        assert_eq!(a.words()[1], 1);
        let ones: Vec<usize> = a.iter_ones().collect();
        assert_eq!(ones, vec![0, 64, 129]);

        let mut b = DenseBitSet::new(130);
        b.extend([64, 65]);
        let mut dst = DenseBitSet::new(130);
        dst.set_to_intersection(&a, &b);
        assert_eq!(dst.iter().collect::<Vec<_>>(), vec![64]);
        dst.copy_from(&a);
        assert_eq!(dst, a);
    }

    #[test]
    fn bit_matrix_rows() {
        let mut m = BitMatrix::new(3, 130);
        m.set(0, 0);
        m.set(0, 129);
        m.set(1, 64);
        assert!(m.contains(0, 0) && m.contains(0, 129) && m.contains(1, 64));
        assert!(!m.contains(2, 0));
        assert_eq!(m.row_count(0), 2);
        assert_eq!(m.row_iter(0).collect::<Vec<_>>(), vec![0, 129]);
        m.row_union_row(2, &m.clone(), 0);
        assert_eq!(m.row_iter(2).collect::<Vec<_>>(), vec![0, 129]);
        let words: Vec<u64> = m.row_words(1).to_vec();
        m.row_union_words(2, &words);
        assert_eq!(m.row_iter(2).collect::<Vec<_>>(), vec![0, 64, 129]);
        m.unset(2, 64);
        assert!(!m.contains(2, 64));
        m.row_clear(2);
        assert_eq!(m.row_count(2), 0);
        assert_eq!((m.num_rows(), m.num_cols()), (3, 130));
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert!(uf.same_set(0, 1));
        assert!(!uf.same_set(1, 2));
        uf.union(1, 3);
        assert!(uf.same_set(0, 2));
        assert!(!uf.same_set(4, 5));
        assert_eq!(uf.len(), 6);
    }
}
