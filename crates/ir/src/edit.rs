//! CFG editing: inserting instructions at block boundaries and placing code
//! on edges (splitting critical edges, creating jump blocks).
//!
//! These primitives implement the physical realization rules that the
//! paper's jump-edge cost model prices:
//!
//! * non-critical edge → code sinks into the single-successor's bottom or
//!   single-predecessor's top (no new block, no new jump);
//! * critical fall-through edge → a new block inserted *in layout* between
//!   source and target (new block, **no** new jump);
//! * critical jump edge → a new *jump block*: the branch is retargeted to
//!   the new block, which ends with a fresh jump to the original target
//!   (new block **and** an extra executed jump instruction).

use crate::cfg::{Cfg, SuccPos};
use crate::function::Function;
use crate::ids::{BlockId, EdgeId};
use crate::inst::{Inst, InstKind, Origin};

/// Inserts `insts` at the very top of block `b`.
pub fn insert_at_top(func: &mut Function, b: BlockId, insts: Vec<Inst>) {
    let block = func.block_mut(b);
    block.insts.splice(0..0, insts);
}

/// Inserts `insts` at the bottom of block `b`, before its terminator if it
/// has one.
pub fn insert_at_bottom(func: &mut Function, b: BlockId, insts: Vec<Inst>) {
    let block = func.block_mut(b);
    let at = block.bottom_index();
    block.insts.splice(at..at, insts);
}

/// Where code placed on an edge physically landed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgePlacement {
    /// Sunk into the top of the edge's (single-predecessor) target.
    TopOf(BlockId),
    /// Sunk into the bottom of the edge's (single-successor) source.
    BottomOf(BlockId),
    /// A new block was created on the edge.
    NewBlock {
        /// The created block.
        block: BlockId,
        /// Whether an extra jump instruction was required (critical jump
        /// edges only).
        added_jump: bool,
    },
}

/// Places `insts` on CFG edge `e`, choosing the cheapest physical
/// realization (see module docs). Returns where the code landed.
///
/// `cfg` must be the snapshot that produced `e`. The snapshot may be
/// *stale* with respect to earlier [`place_on_edge`] calls on **other**
/// edges of the same function (the realization decisions remain valid
/// because edge splits never change a block's successor count and never
/// add predecessors to pre-existing blocks); it must not be used to place
/// code on the same edge twice.
pub fn place_on_edge(func: &mut Function, cfg: &Cfg, e: EdgeId, insts: Vec<Inst>) -> EdgePlacement {
    let edge = *cfg.edge(e);
    if cfg.num_succs(edge.from) == 1 {
        insert_at_bottom(func, edge.from, insts);
        return EdgePlacement::BottomOf(edge.from);
    }
    // The entry block's top also executes on the initial procedure entry,
    // so an edge back to it cannot sink code there even as its only
    // explicit predecessor (such edges are critical, see
    // [`Cfg::is_critical`]).
    if cfg.num_preds(edge.to) == 1 && edge.to != cfg.entry() {
        insert_at_top(func, edge.to, insts);
        return EdgePlacement::TopOf(edge.to);
    }
    // Critical edge: split it.
    match edge.pos {
        SuccPos::NotTaken => {
            // Critical fall-through edge: insert a block in layout between
            // source and target; control still falls through, no jump.
            let nb = func.add_block(None);
            func.move_block_after(nb, edge.from);
            func.block_mut(nb).insts = insts;
            retarget_fallthrough(func, edge.from, edge.to, nb);
            EdgePlacement::NewBlock {
                block: nb,
                added_jump: false,
            }
        }
        SuccPos::Taken => {
            // Critical jump edge: a jump block at the end of the layout,
            // ending with an extra jump to the original target.
            let nb = func.add_block(None);
            let mut body = insts;
            body.push(Inst::with_origin(
                InstKind::Jump { target: edge.to },
                Origin::JumpBlock,
            ));
            func.block_mut(nb).insts = body;
            retarget_taken(func, edge.from, edge.to, nb);
            EdgePlacement::NewBlock {
                block: nb,
                added_jump: true,
            }
        }
        SuccPos::Only => {
            unreachable!("an edge with a single successor cannot be critical")
        }
    }
}

fn retarget_taken(func: &mut Function, from: BlockId, old: BlockId, new: BlockId) {
    let term = func
        .block_mut(from)
        .terminator_mut()
        .expect("taken edge requires a branch terminator");
    match &mut term.kind {
        InstKind::Branch { taken, .. } => {
            assert_eq!(*taken, old, "taken target changed since CFG snapshot");
            *taken = new;
        }
        other => panic!("expected branch terminator, found {other:?}"),
    }
}

fn retarget_fallthrough(func: &mut Function, from: BlockId, old: BlockId, new: BlockId) {
    let term = func
        .block_mut(from)
        .terminator_mut()
        .expect("critical fall-through edge requires a branch terminator");
    match &mut term.kind {
        InstKind::Branch { fallthrough, .. } => {
            assert_eq!(
                *fallthrough, old,
                "fall-through target changed since CFG snapshot"
            );
            *fallthrough = new;
        }
        other => panic!("expected branch terminator, found {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::cfg::EdgeKind;
    use crate::ids::Reg;
    use crate::inst::Cond;
    use crate::verify::{verify_function, RegDiscipline};

    fn nop() -> Inst {
        Inst::new(InstKind::LoadImm {
            dst: Reg::Virt(crate::ids::VReg::from_index(9)),
            imm: 0,
        })
    }

    /// A -> {B (fall), C (taken)}; B -> D (jump); C -> D (fall);
    /// D -> {E (fall), B (taken, critical jump: B now has preds A, D)}.
    fn crit_func() -> (Function, [BlockId; 5]) {
        let mut fb = FunctionBuilder::new("crit", 0);
        let a = fb.create_block(Some("A"));
        let b = fb.create_block(Some("B"));
        let c = fb.create_block(Some("C"));
        let d = fb.create_block(Some("D"));
        let e = fb.create_block(Some("E"));
        fb.switch_to(a);
        let x = fb.li(0);
        let y = fb.li(1);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(y), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        // falls through to D
        let _ = fb.li(7);
        fb.switch_to(d);
        let z = fb.li(2);
        fb.branch(Cond::Gt, Reg::Virt(z), Reg::Virt(z), b, e);
        fb.switch_to(e);
        fb.ret(None);
        let mut f = fb.finish();
        f.reserve_vregs(10);
        (f, [a, b, c, d, e])
    }

    #[test]
    fn top_and_bottom_insertion() {
        let (mut f, [_, b, ..]) = crit_func();
        insert_at_top(&mut f, b, vec![nop()]);
        insert_at_bottom(&mut f, b, vec![nop(), nop()]);
        let insts = &f.block(b).insts;
        assert_eq!(insts.len(), 4); // nop, nop, nop, jmp
        assert!(insts[3].is_terminator());
        assert!(verify_function(&f, RegDiscipline::Virtual).is_empty());
    }

    #[test]
    fn sinks_into_single_succ_bottom() {
        let (mut f, [_, b, _, d, _]) = crit_func();
        let cfg = Cfg::compute(&f);
        let e = cfg.edge_between(b, d).unwrap();
        let placed = place_on_edge(&mut f, &cfg, e, vec![nop()]);
        assert_eq!(placed, EdgePlacement::BottomOf(b));
        assert!(verify_function(&f, RegDiscipline::Virtual).is_empty());
    }

    #[test]
    fn sinks_into_single_pred_top() {
        let (mut f, [a, _, c, _, _]) = crit_func();
        let cfg = Cfg::compute(&f);
        let e = cfg.edge_between(a, c).unwrap();
        let placed = place_on_edge(&mut f, &cfg, e, vec![nop()]);
        assert_eq!(placed, EdgePlacement::TopOf(c));
        assert!(verify_function(&f, RegDiscipline::Virtual).is_empty());
    }

    #[test]
    fn splits_critical_jump_edge_with_jump() {
        let (mut f, [_, b, _, d, _]) = crit_func();
        let cfg = Cfg::compute(&f);
        let e = cfg.edge_between(d, b).unwrap();
        assert!(cfg.needs_jump_block(e));
        let placed = place_on_edge(&mut f, &cfg, e, vec![nop()]);
        match placed {
            EdgePlacement::NewBlock { block, added_jump } => {
                assert!(added_jump);
                let insts = &f.block(block).insts;
                assert_eq!(insts.len(), 2);
                assert_eq!(insts[1].origin, Origin::JumpBlock);
                // D's taken target now points at the jump block.
                let cfg2 = Cfg::compute(&f);
                assert!(cfg2.edge_between(d, block).is_some());
                assert!(cfg2.edge_between(block, b).is_some());
                assert!(cfg2.edge_between(d, b).is_none());
            }
            other => panic!("expected new block, got {other:?}"),
        }
        assert!(verify_function(&f, RegDiscipline::Virtual).is_empty());
    }

    #[test]
    fn splits_critical_fall_edge_without_jump() {
        // Build: A branches {C taken, B fall}; B falls through to C;
        // C returns. Make the A->B edge... we need a critical fall edge:
        // A -> {B fall, C taken}, and B also entered from D.
        let mut fb = FunctionBuilder::new("critfall", 0);
        let a = fb.create_block(Some("A"));
        let b = fb.create_block(Some("B"));
        let c = fb.create_block(Some("C"));
        let d = fb.create_block(Some("D"));
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), d, b);
        fb.switch_to(b);
        fb.jump(c);
        fb.switch_to(c);
        fb.ret(None);
        fb.switch_to(d);
        fb.jump(b);
        let mut f = fb.finish();
        f.reserve_vregs(10);
        let cfg = Cfg::compute(&f);
        let e = cfg.edge_between(a, b).unwrap();
        assert!(cfg.is_critical(e));
        assert_eq!(cfg.edge(e).kind, EdgeKind::Fall);
        assert!(!cfg.needs_jump_block(e));
        let placed = place_on_edge(&mut f, &cfg, e, vec![nop()]);
        match placed {
            EdgePlacement::NewBlock { block, added_jump } => {
                assert!(!added_jump);
                // The new block sits between A and B in layout and falls
                // through.
                assert_eq!(f.layout_next(a), Some(block));
                assert_eq!(f.layout_next(block), Some(b));
                assert!(f.block(block).falls_through());
            }
            other => panic!("expected new block, got {other:?}"),
        }
        assert!(verify_function(&f, RegDiscipline::Virtual).is_empty());
    }
}
