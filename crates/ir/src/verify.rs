//! Structural verification of functions and modules.

use crate::cfg::Cfg;
use crate::function::Function;
use crate::ids::{BlockId, Reg};
use crate::inst::{Callee, InstKind};
use crate::module::Module;
use std::error::Error;
use std::fmt;

/// A structural invariant violation found by the verifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The function has no blocks.
    Empty {
        /// Function name.
        func: String,
    },
    /// A terminator appears before the end of a block.
    TerminatorInBody {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// Instruction index within the block.
        index: usize,
    },
    /// The last block in layout falls through (there is nothing to fall
    /// into).
    FallthroughAtEnd {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
    },
    /// A branch's fall-through target is not the next block in layout.
    BadFallthrough {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// The branch's fall-through target.
        target: BlockId,
        /// The actual next block in layout.
        next: Option<BlockId>,
    },
    /// A branch whose taken and fall-through targets coincide (must be a
    /// jump instead; this would create parallel CFG edges).
    ParallelEdges {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
    },
    /// A terminator references a block id that does not exist.
    BadTarget {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// The out-of-range target.
        target: BlockId,
    },
    /// A memory access references a frame slot past the frame size.
    BadSlot {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// Instruction index within the block.
        index: usize,
    },
    /// A virtual register index is past the function's vreg counter.
    BadVReg {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// Instruction index within the block.
        index: usize,
    },
    /// A block is unreachable from the entry.
    Unreachable {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
    },
    /// A block cannot reach any return (post-dominance and the PST would be
    /// undefined).
    NoExitPath {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
    },
    /// The function contains no return.
    NoReturn {
        /// Function name.
        func: String,
    },
    /// A virtual register appears although the function is expected to be
    /// fully physical (post-register-allocation).
    VirtualAfterRegalloc {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// Instruction index within the block.
        index: usize,
    },
    /// A call references a function id outside the module.
    BadCallee {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
    },
}

impl VerifyError {
    /// Name of the function the error is in.
    pub fn func(&self) -> &str {
        match self {
            VerifyError::Empty { func }
            | VerifyError::TerminatorInBody { func, .. }
            | VerifyError::FallthroughAtEnd { func, .. }
            | VerifyError::BadFallthrough { func, .. }
            | VerifyError::ParallelEdges { func, .. }
            | VerifyError::BadTarget { func, .. }
            | VerifyError::BadSlot { func, .. }
            | VerifyError::BadVReg { func, .. }
            | VerifyError::Unreachable { func, .. }
            | VerifyError::NoExitPath { func, .. }
            | VerifyError::NoReturn { func }
            | VerifyError::VirtualAfterRegalloc { func, .. }
            | VerifyError::BadCallee { func, .. } => func,
        }
    }

    /// The offending block, when the error names one.
    pub fn block(&self) -> Option<BlockId> {
        match self {
            VerifyError::Empty { .. } | VerifyError::NoReturn { .. } => None,
            VerifyError::TerminatorInBody { block, .. }
            | VerifyError::FallthroughAtEnd { block, .. }
            | VerifyError::BadFallthrough { block, .. }
            | VerifyError::ParallelEdges { block, .. }
            | VerifyError::BadTarget { block, .. }
            | VerifyError::BadSlot { block, .. }
            | VerifyError::BadVReg { block, .. }
            | VerifyError::Unreachable { block, .. }
            | VerifyError::NoExitPath { block, .. }
            | VerifyError::VirtualAfterRegalloc { block, .. }
            | VerifyError::BadCallee { block, .. } => Some(*block),
        }
    }

    /// The offending instruction's index within its block, when the
    /// error names one.
    pub fn inst_index(&self) -> Option<usize> {
        match self {
            VerifyError::TerminatorInBody { index, .. }
            | VerifyError::BadSlot { index, .. }
            | VerifyError::BadVReg { index, .. }
            | VerifyError::VirtualAfterRegalloc { index, .. } => Some(*index),
            _ => None,
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Empty { func } => write!(f, "function {func} has no blocks"),
            VerifyError::TerminatorInBody { func, block, index } => {
                write!(f, "{func}/{block}: terminator at non-final index {index}")
            }
            VerifyError::FallthroughAtEnd { func, block } => {
                write!(f, "{func}/{block}: last block in layout falls through")
            }
            VerifyError::BadFallthrough {
                func,
                block,
                target,
                next,
            } => write!(
                f,
                "{func}/{block}: branch fall-through {target} is not the layout successor {next:?}"
            ),
            VerifyError::ParallelEdges { func, block } => {
                write!(
                    f,
                    "{func}/{block}: branch with identical taken/fall-through targets"
                )
            }
            VerifyError::BadTarget {
                func,
                block,
                target,
            } => {
                write!(
                    f,
                    "{func}/{block}: terminator targets unknown block {target}"
                )
            }
            VerifyError::BadSlot { func, block, index } => {
                write!(
                    f,
                    "{func}/{block}: instruction {index} references slot out of frame"
                )
            }
            VerifyError::BadVReg { func, block, index } => {
                write!(
                    f,
                    "{func}/{block}: instruction {index} references unallocated vreg"
                )
            }
            VerifyError::Unreachable { func, block } => {
                write!(f, "{func}/{block}: unreachable from entry")
            }
            VerifyError::NoExitPath { func, block } => {
                write!(f, "{func}/{block}: no path to any return")
            }
            VerifyError::NoReturn { func } => write!(f, "function {func} has no return"),
            VerifyError::VirtualAfterRegalloc { func, block, index } => {
                write!(
                    f,
                    "{func}/{block}: instruction {index} uses a virtual register post-RA"
                )
            }
            VerifyError::BadCallee { func, block } => {
                write!(f, "{func}/{block}: call references unknown function")
            }
        }
    }
}

impl Error for VerifyError {}

/// Expected register discipline of a function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegDiscipline {
    /// Before register allocation: virtual registers allowed (physical
    /// registers allowed at ABI points too).
    Virtual,
    /// After register allocation: physical registers only.
    Physical,
}

/// Verifies the structural invariants of `func`. Returns all violations.
pub fn verify_function(func: &Function, discipline: RegDiscipline) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    let name = func.name().to_string();
    if func.num_blocks() == 0 {
        errors.push(VerifyError::Empty { func: name });
        return errors;
    }

    let num_blocks = func.num_blocks();
    let mut has_return = false;

    for b in func.block_ids() {
        let block = func.block(b);
        for (i, inst) in block.insts.iter().enumerate() {
            if inst.is_terminator() && i + 1 != block.insts.len() {
                errors.push(VerifyError::TerminatorInBody {
                    func: name.clone(),
                    block: b,
                    index: i,
                });
            }
            let check_reg = |r: Reg, errors: &mut Vec<VerifyError>| match r {
                Reg::Virt(v) => {
                    if v.index() >= func.num_vregs() {
                        errors.push(VerifyError::BadVReg {
                            func: name.clone(),
                            block: b,
                            index: i,
                        });
                    }
                    if discipline == RegDiscipline::Physical {
                        errors.push(VerifyError::VirtualAfterRegalloc {
                            func: name.clone(),
                            block: b,
                            index: i,
                        });
                    }
                }
                Reg::Phys(_) => {}
            };
            inst.for_each_use(|r| check_reg(r, &mut errors));
            inst.for_each_def(|r| check_reg(r, &mut errors));
            match &inst.kind {
                InstKind::Load { slot, .. } | InstKind::Store { slot, .. }
                    if slot.index() >= func.frame().num_slots() =>
                {
                    errors.push(VerifyError::BadSlot {
                        func: name.clone(),
                        block: b,
                        index: i,
                    });
                }
                InstKind::Return { .. } => has_return = true,
                _ => {}
            }
        }

        match block.terminator().map(|t| &t.kind) {
            Some(InstKind::Jump { target }) => {
                if target.index() >= num_blocks {
                    errors.push(VerifyError::BadTarget {
                        func: name.clone(),
                        block: b,
                        target: *target,
                    });
                }
            }
            Some(InstKind::Branch {
                taken, fallthrough, ..
            }) => {
                for t in [taken, fallthrough] {
                    if t.index() >= num_blocks {
                        errors.push(VerifyError::BadTarget {
                            func: name.clone(),
                            block: b,
                            target: *t,
                        });
                    }
                }
                if taken == fallthrough {
                    errors.push(VerifyError::ParallelEdges {
                        func: name.clone(),
                        block: b,
                    });
                }
                if taken.index() < num_blocks && fallthrough.index() < num_blocks {
                    let next = func.layout_next(b);
                    if next != Some(*fallthrough) {
                        errors.push(VerifyError::BadFallthrough {
                            func: name.clone(),
                            block: b,
                            target: *fallthrough,
                            next,
                        });
                    }
                }
            }
            Some(InstKind::Return { .. }) => {}
            Some(_) => unreachable!(),
            None => {
                if func.layout_next(b).is_none() {
                    errors.push(VerifyError::FallthroughAtEnd {
                        func: name.clone(),
                        block: b,
                    });
                }
            }
        }
    }

    if !has_return {
        errors.push(VerifyError::NoReturn { func: name.clone() });
    }

    // Reachability / co-reachability checks only make sense on a graph with
    // no dangling targets.
    if errors.is_empty() {
        let cfg = Cfg::compute(func);
        let reachable = cfg.reachable_blocks();
        for b in func.block_ids() {
            if !reachable.contains(b.index()) {
                errors.push(VerifyError::Unreachable {
                    func: name.clone(),
                    block: b,
                });
            }
        }
        // Backward reachability from returns.
        let mut coreach = crate::bitset::DenseBitSet::new(num_blocks);
        let mut stack: Vec<BlockId> = cfg.exit_blocks().to_vec();
        for &b in cfg.exit_blocks() {
            coreach.insert(b.index());
        }
        while let Some(b) = stack.pop() {
            for p in cfg.pred_blocks(b) {
                if coreach.insert(p.index()) {
                    stack.push(p);
                }
            }
        }
        for b in func.block_ids() {
            if reachable.contains(b.index()) && !coreach.contains(b.index()) {
                errors.push(VerifyError::NoExitPath {
                    func: name.clone(),
                    block: b,
                });
            }
        }
    }

    errors
}

/// Verifies every function of a module plus cross-function call targets.
pub fn verify_module(module: &Module, discipline: RegDiscipline) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    for (_, func) in module.funcs() {
        errors.extend(verify_function(func, discipline));
        for b in func.block_ids() {
            for inst in &func.block(b).insts {
                if let InstKind::Call {
                    callee: Callee::Func(id),
                    ..
                } = &inst.kind
                {
                    if id.index() >= module.num_funcs() {
                        errors.push(VerifyError::BadCallee {
                            func: func.name().to_string(),
                            block: b,
                        });
                    }
                }
            }
        }
    }
    errors
}

/// Panics with a readable report if `func` fails verification.
///
/// # Panics
///
/// Panics when verification errors exist; the message lists all of them.
pub fn assert_valid(func: &Function, discipline: RegDiscipline) {
    let errors = verify_function(func, discipline);
    if !errors.is_empty() {
        let msgs: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        panic!(
            "IR verification failed for `{}`:\n  {}\n{}",
            func.name(),
            msgs.join("\n  "),
            crate::display::function_to_string(func)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ids::Reg;
    use crate::inst::Cond;

    fn valid_function() -> Function {
        let mut fb = FunctionBuilder::new("ok", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        let y = fb.li(1);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(y), b, b);
        // Deliberately invalid here; fixed below.
        let mut f = fb.finish();
        // Rewrite branch into a jump so the function is valid.
        let last = f.block_mut(a).insts.pop().unwrap();
        drop(last);
        f.block_mut(a)
            .insts
            .push(crate::inst::Inst::new(InstKind::Jump { target: b }));
        f.block_mut(b)
            .insts
            .push(crate::inst::Inst::new(InstKind::Return { value: None }));
        f
    }

    #[test]
    fn accepts_valid_function() {
        let f = valid_function();
        assert!(verify_function(&f, RegDiscipline::Virtual).is_empty());
    }

    #[test]
    fn rejects_bad_fallthrough() {
        let mut fb = FunctionBuilder::new("bad", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        // fallthrough c, but layout-next of a is b.
        fb.branch(Cond::Eq, Reg::Virt(x), Reg::Virt(x), b, c);
        fb.switch_to(b);
        fb.ret(None);
        fb.switch_to(c);
        fb.ret(None);
        let f = fb.finish();
        let errs = verify_function(&f, RegDiscipline::Virtual);
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::BadFallthrough { .. })));
    }

    #[test]
    fn rejects_parallel_edges() {
        let mut fb = FunctionBuilder::new("bad", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Eq, Reg::Virt(x), Reg::Virt(x), b, b);
        fb.switch_to(b);
        fb.ret(None);
        let f = fb.finish();
        let errs = verify_function(&f, RegDiscipline::Virtual);
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::ParallelEdges { .. })));
    }

    #[test]
    fn rejects_unreachable_block() {
        let mut fb = FunctionBuilder::new("bad", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        fb.switch_to(a);
        fb.jump(c);
        fb.switch_to(b);
        fb.ret(None);
        fb.switch_to(c);
        fb.ret(None);
        let f = fb.finish();
        let errs = verify_function(&f, RegDiscipline::Virtual);
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::Unreachable { .. })));
    }

    #[test]
    fn rejects_infinite_loop_region() {
        let mut fb = FunctionBuilder::new("bad", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        fb.switch_to(a);
        fb.jump(b);
        fb.switch_to(b);
        fb.jump(b);
        let f = fb.finish();
        let errs = verify_function(&f, RegDiscipline::Virtual);
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::NoReturn { .. })));
    }

    #[test]
    fn rejects_virtual_regs_post_ra() {
        let f = valid_function();
        let errs = verify_function(&f, RegDiscipline::Physical);
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::VirtualAfterRegalloc { .. })));
    }

    #[test]
    fn rejects_fallthrough_at_end() {
        let mut fb = FunctionBuilder::new("bad", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        fb.switch_to(a);
        fb.ret(None);
        fb.switch_to(b);
        let _ = fb.li(0); // no terminator, b is last in layout
        let f = fb.finish();
        let errs = verify_function(&f, RegDiscipline::Virtual);
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::FallthroughAtEnd { .. })));
    }
}
