//! A convenience builder for constructing functions programmatically.

use crate::function::Function;
use crate::ids::{BlockId, FrameSlot, Reg, VReg};
use crate::inst::{BinOp, Callee, Cond, Inst, InstKind, MemKind, Origin};
use crate::target::Target;

/// Incrementally constructs a [`Function`].
///
/// Blocks are laid out in creation order by default (override with
/// [`set_layout`](Function::set_layout) on the finished function). The
/// builder keeps a *current block*; emission methods append to it.
///
/// # Examples
///
/// ```
/// use spillopt_ir::{FunctionBuilder, Cond, Reg};
///
/// let mut fb = FunctionBuilder::new("max", 2);
/// let entry = fb.create_block(Some("entry"));
/// let then = fb.create_block(Some("then"));
/// let done = fb.create_block(Some("done"));
/// fb.switch_to(entry);
/// let a = fb.param(0);
/// let b = fb.param(1);
/// fb.branch(Cond::Ge, Reg::Virt(a), Reg::Virt(b), done, then);
/// fb.switch_to(then);
/// fb.mov(Reg::Virt(a), Reg::Virt(b));
/// fb.switch_to(done);
/// fb.ret(Some(Reg::Virt(a)));
/// let func = fb.finish();
/// assert_eq!(func.num_blocks(), 3);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur: Option<BlockId>,
    target: Target,
}

impl FunctionBuilder {
    /// Starts building a function with `num_params` parameters, using the
    /// default (PA-RISC-like) target convention for parameter plumbing.
    pub fn new(name: impl Into<String>, num_params: usize) -> Self {
        Self::with_target(name, num_params, Target::default())
    }

    /// Starts building a function against an explicit target convention.
    pub fn with_target(name: impl Into<String>, num_params: usize, target: Target) -> Self {
        let mut func = Function::new(name);
        func.set_num_params(num_params);
        FunctionBuilder {
            func,
            cur: None,
            target,
        }
    }

    /// Returns the target convention used by this builder.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// Creates a new block (appended to the layout).
    pub fn create_block(&mut self, name: Option<&str>) -> BlockId {
        self.func.add_block(name)
    }

    /// Makes `b` the current block for subsequent emissions.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = Some(b);
    }

    /// Returns the current block.
    ///
    /// # Panics
    ///
    /// Panics if no block has been selected.
    pub fn current(&self) -> BlockId {
        self.cur.expect("no current block; call switch_to first")
    }

    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        self.func.new_vreg()
    }

    /// Allocates a fresh frame slot.
    pub fn new_slot(&mut self) -> FrameSlot {
        self.func.frame_mut().alloc_slot()
    }

    /// Emits a raw instruction into the current block.
    pub fn emit(&mut self, kind: InstKind) {
        self.emit_with_origin(kind, Origin::Source);
    }

    /// Emits a raw instruction with an explicit origin.
    pub fn emit_with_origin(&mut self, kind: InstKind, origin: Origin) {
        let b = self.current();
        self.func
            .block_mut(b)
            .insts
            .push(Inst::with_origin(kind, origin));
    }

    /// Emits `v = move argreg[i]`, materializing parameter `i` into a fresh
    /// vreg. Must be called in the entry block before any call clobbers the
    /// argument registers.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the target's argument registers or the declared
    /// parameter count.
    pub fn param(&mut self, i: usize) -> VReg {
        assert!(i < self.func.num_params(), "parameter index out of range");
        let arg = *self
            .target
            .arg_regs()
            .get(i)
            .expect("more parameters than argument registers");
        let v = self.new_vreg();
        self.emit(InstKind::Move {
            dst: Reg::Virt(v),
            src: Reg::Phys(arg),
        });
        v
    }

    /// Emits `v = imm` into a fresh vreg and returns it.
    pub fn li(&mut self, imm: i64) -> VReg {
        let v = self.new_vreg();
        self.emit(InstKind::LoadImm {
            dst: Reg::Virt(v),
            imm,
        });
        v
    }

    /// Emits `v = lhs op rhs` into a fresh vreg and returns it.
    pub fn bin(&mut self, op: BinOp, lhs: Reg, rhs: Reg) -> VReg {
        let v = self.new_vreg();
        self.emit(InstKind::Bin {
            op,
            dst: Reg::Virt(v),
            lhs,
            rhs,
        });
        v
    }

    /// Emits `v = lhs op imm` into a fresh vreg and returns it.
    pub fn bin_imm(&mut self, op: BinOp, lhs: Reg, imm: i64) -> VReg {
        let v = self.new_vreg();
        self.emit(InstKind::BinImm {
            op,
            dst: Reg::Virt(v),
            lhs,
            imm,
        });
        v
    }

    /// Emits `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.emit(InstKind::Move { dst, src });
    }

    /// Emits a program (`MemKind::Data`) load of `slot` into a fresh vreg.
    pub fn load(&mut self, slot: FrameSlot) -> VReg {
        let v = self.new_vreg();
        self.emit(InstKind::Load {
            dst: Reg::Virt(v),
            slot,
            kind: MemKind::Data,
        });
        v
    }

    /// Emits a program (`MemKind::Data`) store of `src` to `slot`.
    pub fn store(&mut self, src: Reg, slot: FrameSlot) {
        self.emit(InstKind::Store {
            src,
            slot,
            kind: MemKind::Data,
        });
    }

    /// Emits a full ABI call sequence: moves `args` into the argument
    /// registers, calls, and moves the return value into a fresh vreg.
    ///
    /// # Panics
    ///
    /// Panics if more arguments are passed than the target has argument
    /// registers.
    pub fn call(&mut self, callee: Callee, args: &[Reg]) -> VReg {
        assert!(
            args.len() <= self.target.arg_regs().len(),
            "too many call arguments"
        );
        let arg_regs: Vec<Reg> = self.target.arg_regs()[..args.len()]
            .iter()
            .map(|&p| Reg::Phys(p))
            .collect();
        for (dst, src) in arg_regs.iter().zip(args) {
            self.mov(*dst, *src);
        }
        let ret = Reg::Phys(self.target.ret_reg());
        self.emit(InstKind::Call {
            callee,
            args: arg_regs,
            ret: Some(ret),
        });
        let v = self.new_vreg();
        self.mov(Reg::Virt(v), ret);
        v
    }

    /// Emits an unconditional jump terminator.
    pub fn jump(&mut self, target: BlockId) {
        self.emit(InstKind::Jump { target });
    }

    /// Emits a conditional branch terminator. `fallthrough` must end up as
    /// the next block in layout (checked by the verifier, not here).
    pub fn branch(&mut self, cond: Cond, lhs: Reg, rhs: Reg, taken: BlockId, fallthrough: BlockId) {
        self.emit(InstKind::Branch {
            cond,
            lhs,
            rhs,
            taken,
            fallthrough,
        });
    }

    /// Emits a return terminator. For a value-returning function, moves the
    /// value into the return register first (ABI lowering).
    pub fn ret(&mut self, value: Option<Reg>) {
        match value {
            Some(v) => {
                let ret = Reg::Phys(self.target.ret_reg());
                if v != ret {
                    self.mov(ret, v);
                }
                self.emit(InstKind::Return { value: Some(ret) });
            }
            None => self.emit(InstKind::Return { value: None }),
        }
    }

    /// Finishes and returns the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Returns a reference to the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Returns a mutable reference to the function under construction.
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straightline_function() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block(None);
        fb.switch_to(e);
        let p = fb.param(0);
        let one = fb.li(1);
        let s = fb.bin(BinOp::Add, Reg::Virt(p), Reg::Virt(one));
        fb.ret(Some(Reg::Virt(s)));
        let f = fb.finish();
        assert_eq!(f.num_blocks(), 1);
        // move-from-arg, li, add, move-to-ret, return
        assert_eq!(f.block(e).insts.len(), 5);
        assert_eq!(f.num_params(), 1);
    }

    #[test]
    fn call_lowering_uses_abi_registers() {
        let mut fb = FunctionBuilder::new("g", 0);
        let e = fb.create_block(None);
        fb.switch_to(e);
        let a = fb.li(10);
        let r = fb.call(Callee::External(7), &[Reg::Virt(a)]);
        fb.ret(Some(Reg::Virt(r)));
        let f = fb.finish();
        let insts = &f.block(e).insts;
        // li, mov arg, call, mov ret, mov r0, return
        assert_eq!(insts.len(), 6);
        let call = &insts[2];
        match &call.kind {
            InstKind::Call { args, ret, .. } => {
                assert_eq!(args.len(), 1);
                assert!(args[0].is_phys());
                assert!(ret.unwrap().is_phys());
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "no current block")]
    fn emitting_without_block_panics() {
        let mut fb = FunctionBuilder::new("h", 0);
        fb.li(0);
    }
}
