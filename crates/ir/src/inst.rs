//! Instructions of the machine-level IR.
//!
//! The instruction set is a small RISC-like three-address code, rich enough
//! to express the SPEC-like synthetic workloads and all spill code inserted
//! by the register allocator and the callee-saved placement passes.

use crate::ids::{BlockId, FrameSlot, FuncId, PReg, Reg};
use crate::target::Target;
use std::fmt;

/// Binary arithmetic/logic operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (defined as 0 when the divisor is 0, like a trapping-free
    /// machine idiom; keeps the interpreter total).
    Div,
    /// Remainder (defined as 0 when the divisor is 0).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by `rhs & 63`).
    Shl,
    /// Arithmetic shift right (by `rhs & 63`).
    Shr,
}

impl BinOp {
    /// Evaluates the operation on two values.
    pub fn eval(self, lhs: i64, rhs: i64) -> i64 {
        match self {
            BinOp::Add => lhs.wrapping_add(rhs),
            BinOp::Sub => lhs.wrapping_sub(rhs),
            BinOp::Mul => lhs.wrapping_mul(rhs),
            BinOp::Div => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_div(rhs)
                }
            }
            BinOp::Rem => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_rem(rhs)
                }
            }
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Shl => lhs.wrapping_shl((rhs & 63) as u32),
            BinOp::Shr => lhs.wrapping_shr((rhs & 63) as u32),
        }
    }

    /// Returns the mnemonic used by the printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Signed comparison conditions for conditional branches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl Cond {
    /// Evaluates the condition on two values.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => lhs < rhs,
            Cond::Le => lhs <= rhs,
            Cond::Gt => lhs > rhs,
            Cond::Ge => lhs >= rhs,
        }
    }

    /// Returns the mnemonic used by the printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Why a memory access exists. Used to attribute dynamic overhead exactly as
/// the paper does (Figure 5 counts allocator spill code plus callee-saved
/// save/restore code, and excludes program loads/stores).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemKind {
    /// A load/store present in the source program.
    Data,
    /// Spill code inserted by the register allocator for an ordinary
    /// variable that did not receive a register.
    Spill,
    /// A callee-saved register save (store) or restore (load).
    CalleeSave,
}

impl MemKind {
    /// Returns the suffix used by the printer/parser (`.data`, `.spill`,
    /// `.csave`).
    pub fn suffix(self) -> &'static str {
        match self {
            MemKind::Data => "data",
            MemKind::Spill => "spill",
            MemKind::CalleeSave => "csave",
        }
    }
}

/// Provenance of an instruction; used for dynamic overhead accounting.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Origin {
    /// Part of the original program.
    #[default]
    Source,
    /// Inserted by the register allocator (spill loads/stores and their
    /// address arithmetic).
    Spill,
    /// Inserted by a callee-saved save/restore placement pass.
    CalleeSave,
    /// A jump instruction inserted to realize spill code on a jump edge
    /// (the "jump block" mechanism of the paper).
    JumpBlock,
}

/// The target of a call instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Callee {
    /// A function in the same module, executed by the interpreter.
    Func(FuncId),
    /// An opaque external function: returns a deterministic pseudo-random
    /// value and clobbers all caller-saved registers.
    External(u32),
}

/// The operation performed by an instruction.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum InstKind {
    /// `dst = imm`.
    LoadImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `dst = lhs op rhs`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = lhs op imm`.
    BinImm {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Immediate right operand.
        imm: i64,
    },
    /// `dst = src`.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = frame[slot]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Frame slot to read.
        slot: FrameSlot,
        /// Why this load exists.
        kind: MemKind,
    },
    /// `frame[slot] = src`.
    Store {
        /// Register to store.
        src: Reg,
        /// Frame slot to write.
        slot: FrameSlot,
        /// Why this store exists.
        kind: MemKind,
    },
    /// Call `callee(args...)`; the return value (if any) is written to
    /// `ret`. Calls clobber all caller-saved registers of the target.
    Call {
        /// Called function.
        callee: Callee,
        /// Argument registers (at most [`Target::arg_regs`] many
        /// post-lowering).
        args: Vec<Reg>,
        /// Register receiving the return value.
        ret: Option<Reg>,
    },
    /// Unconditional jump. Terminator.
    Jump {
        /// Jump target.
        target: BlockId,
    },
    /// Conditional branch. Terminator. `fallthrough` must be the next block
    /// in layout order.
    Branch {
        /// Comparison condition.
        cond: Cond,
        /// Left comparison operand.
        lhs: Reg,
        /// Right comparison operand.
        rhs: Reg,
        /// Target when the condition holds (a jump edge).
        taken: BlockId,
        /// Target when the condition does not hold (the fall-through edge).
        fallthrough: BlockId,
    },
    /// Return from the function. Terminator.
    Return {
        /// Returned value, if any.
        value: Option<Reg>,
    },
}

/// An instruction: an operation plus its provenance.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Inst {
    /// The operation.
    pub kind: InstKind,
    /// Why the instruction exists (used for overhead accounting).
    pub origin: Origin,
}

impl Inst {
    /// Creates a source-program instruction.
    pub fn new(kind: InstKind) -> Self {
        Inst {
            kind,
            origin: Origin::Source,
        }
    }

    /// Creates an instruction with an explicit provenance.
    pub fn with_origin(kind: InstKind, origin: Origin) -> Self {
        Inst { kind, origin }
    }

    /// Returns `true` if this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self.kind,
            InstKind::Jump { .. } | InstKind::Branch { .. } | InstKind::Return { .. }
        )
    }

    /// Returns `true` for register-to-register moves.
    pub fn is_move(&self) -> bool {
        matches!(self.kind, InstKind::Move { .. })
    }

    /// Calls `f` for every register this instruction reads.
    pub fn for_each_use(&self, mut f: impl FnMut(Reg)) {
        match &self.kind {
            InstKind::LoadImm { .. } | InstKind::Jump { .. } => {}
            InstKind::Bin { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            InstKind::BinImm { lhs, .. } => f(*lhs),
            InstKind::Move { src, .. } => f(*src),
            InstKind::Load { .. } => {}
            InstKind::Store { src, .. } => f(*src),
            InstKind::Call { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            InstKind::Branch { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            InstKind::Return { value } => {
                if let Some(v) = value {
                    f(*v);
                }
            }
        }
    }

    /// Calls `f` for every register this instruction writes.
    pub fn for_each_def(&self, mut f: impl FnMut(Reg)) {
        match &self.kind {
            InstKind::LoadImm { dst, .. }
            | InstKind::Bin { dst, .. }
            | InstKind::BinImm { dst, .. }
            | InstKind::Move { dst, .. }
            | InstKind::Load { dst, .. } => f(*dst),
            InstKind::Call { ret, .. } => {
                if let Some(r) = ret {
                    f(*r);
                }
            }
            InstKind::Store { .. }
            | InstKind::Jump { .. }
            | InstKind::Branch { .. }
            | InstKind::Return { .. } => {}
        }
    }

    /// Returns the registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        let mut v = Vec::new();
        self.for_each_use(|r| v.push(r));
        v
    }

    /// Returns the registers written by this instruction.
    pub fn defs(&self) -> Vec<Reg> {
        let mut v = Vec::new();
        self.for_each_def(|r| v.push(r));
        v
    }

    /// Calls `f` for every physical register implicitly clobbered by this
    /// instruction (for calls: the target's caller-saved set).
    pub fn for_each_clobber(&self, target: &Target, mut f: impl FnMut(PReg)) {
        if let InstKind::Call { .. } = self.kind {
            for &p in target.caller_saved() {
                f(p);
            }
        }
    }

    /// Calls `f` with a mutable reference to every register operand (defs
    /// and uses); used by the register-allocation rewrite.
    pub fn for_each_reg_mut(&mut self, mut f: impl FnMut(&mut Reg)) {
        match &mut self.kind {
            InstKind::LoadImm { dst, .. } => f(dst),
            InstKind::Bin { dst, lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
                f(dst);
            }
            InstKind::BinImm { dst, lhs, .. } => {
                f(lhs);
                f(dst);
            }
            InstKind::Move { dst, src } => {
                f(src);
                f(dst);
            }
            InstKind::Load { dst, .. } => f(dst),
            InstKind::Store { src, .. } => f(src),
            InstKind::Call { args, ret, .. } => {
                for a in args {
                    f(a);
                }
                if let Some(r) = ret {
                    f(r);
                }
            }
            InstKind::Jump { .. } => {}
            InstKind::Branch { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            InstKind::Return { value } => {
                if let Some(v) = value {
                    f(v);
                }
            }
        }
    }

    /// Returns the successor blocks named by this terminator (empty for
    /// non-terminators and returns).
    pub fn terminator_targets(&self) -> Vec<BlockId> {
        match &self.kind {
            InstKind::Jump { target } => vec![*target],
            InstKind::Branch {
                taken, fallthrough, ..
            } => vec![*taken, *fallthrough],
            _ => Vec::new(),
        }
    }

    /// Rewrites terminator targets equal to `from` into `to`.
    pub fn retarget(&mut self, from: BlockId, to: BlockId) {
        match &mut self.kind {
            InstKind::Jump { target } if *target == from => {
                *target = to;
            }
            InstKind::Branch {
                taken, fallthrough, ..
            } => {
                if *taken == from {
                    *taken = to;
                }
                if *fallthrough == from {
                    *fallthrough = to;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VReg;

    fn v(i: usize) -> Reg {
        Reg::Virt(VReg::from_index(i))
    }

    #[test]
    fn binop_eval() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Sub.eval(2, 3), -1);
        assert_eq!(BinOp::Mul.eval(4, 3), 12);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Div.eval(7, 0), 0);
        assert_eq!(BinOp::Rem.eval(7, 0), 0);
        assert_eq!(BinOp::Rem.eval(7, 4), 3);
        assert_eq!(BinOp::Shl.eval(1, 65), 2);
        assert_eq!(BinOp::Shr.eval(-8, 1), -4);
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN);
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(1, 1));
        assert!(Cond::Ne.eval(1, 2));
        assert!(Cond::Lt.eval(-1, 0));
        assert!(Cond::Le.eval(0, 0));
        assert!(Cond::Gt.eval(3, 2));
        assert!(Cond::Ge.eval(2, 2));
        assert!(!Cond::Lt.eval(2, 2));
    }

    #[test]
    fn defs_and_uses() {
        let i = Inst::new(InstKind::Bin {
            op: BinOp::Add,
            dst: v(0),
            lhs: v(1),
            rhs: v(2),
        });
        assert_eq!(i.defs(), vec![v(0)]);
        assert_eq!(i.uses(), vec![v(1), v(2)]);

        let c = Inst::new(InstKind::Call {
            callee: Callee::External(0),
            args: vec![v(3), v(4)],
            ret: Some(v(5)),
        });
        assert_eq!(c.defs(), vec![v(5)]);
        assert_eq!(c.uses(), vec![v(3), v(4)]);
    }

    #[test]
    fn terminator_classification() {
        let j = Inst::new(InstKind::Jump {
            target: BlockId::from_index(0),
        });
        let r = Inst::new(InstKind::Return { value: None });
        let m = Inst::new(InstKind::Move {
            dst: v(0),
            src: v(1),
        });
        assert!(j.is_terminator());
        assert!(r.is_terminator());
        assert!(!m.is_terminator());
        assert!(m.is_move());
    }

    #[test]
    fn retarget_branch() {
        let a = BlockId::from_index(0);
        let b = BlockId::from_index(1);
        let c = BlockId::from_index(2);
        let mut i = Inst::new(InstKind::Branch {
            cond: Cond::Eq,
            lhs: v(0),
            rhs: v(1),
            taken: a,
            fallthrough: b,
        });
        i.retarget(a, c);
        assert_eq!(i.terminator_targets(), vec![c, b]);
    }

    #[test]
    fn clobbers_on_calls_only() {
        let t = Target::pa_risc_like();
        let c = Inst::new(InstKind::Call {
            callee: Callee::External(1),
            args: vec![],
            ret: None,
        });
        let mut n = 0;
        c.for_each_clobber(&t, |_| n += 1);
        assert_eq!(n, t.caller_saved().len());
        let m = Inst::new(InstKind::Move {
            dst: v(0),
            src: v(1),
        });
        let mut n2 = 0;
        m.for_each_clobber(&t, |_| n2 += 1);
        assert_eq!(n2, 0);
    }
}
