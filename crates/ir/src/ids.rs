//! Entity identifiers used throughout the IR.
//!
//! All identifiers are small, `Copy` newtypes over dense indices so that
//! analyses can use plain vectors as entity maps.

use std::fmt;

/// Identifier of a basic block within a [`Function`](crate::Function).
///
/// Blocks are stored densely; `BlockId` is an index into the function's
/// block table (which is distinct from the *layout* order).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id from a dense index.
    pub fn from_index(index: usize) -> Self {
        BlockId(u32::try_from(index).expect("block index overflow"))
    }

    /// Returns the dense index of this block.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Identifier of a virtual (pre-register-allocation) register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(u32);

impl VReg {
    /// Creates a virtual register from a dense index.
    pub fn from_index(index: usize) -> Self {
        VReg(u32::try_from(index).expect("vreg index overflow"))
    }

    /// Returns the dense index of this virtual register.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a physical machine register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PReg(u8);

impl PReg {
    /// Creates a physical register from its hardware number.
    pub fn new(num: u8) -> Self {
        PReg(num)
    }

    /// Returns the hardware register number.
    pub fn num(self) -> u8 {
        self.0
    }

    /// Returns the register number as a dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for PReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A register operand: either virtual (pre-allocation) or physical.
///
/// The IR is usable both before register allocation (mostly virtual
/// registers, with physical registers appearing only at ABI boundaries such
/// as calls and returns) and after (physical registers only).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// A virtual register.
    Virt(VReg),
    /// A physical register.
    Phys(PReg),
}

impl Reg {
    /// Returns the virtual register, if this is one.
    pub fn as_virt(self) -> Option<VReg> {
        match self {
            Reg::Virt(v) => Some(v),
            Reg::Phys(_) => None,
        }
    }

    /// Returns the physical register, if this is one.
    pub fn as_phys(self) -> Option<PReg> {
        match self {
            Reg::Phys(p) => Some(p),
            Reg::Virt(_) => None,
        }
    }

    /// Returns `true` if this is a virtual register.
    pub fn is_virt(self) -> bool {
        matches!(self, Reg::Virt(_))
    }

    /// Returns `true` if this is a physical register.
    pub fn is_phys(self) -> bool {
        matches!(self, Reg::Phys(_))
    }
}

impl From<VReg> for Reg {
    fn from(v: VReg) -> Self {
        Reg::Virt(v)
    }
}

impl From<PReg> for Reg {
    fn from(p: PReg) -> Self {
        Reg::Phys(p)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Virt(v) => write!(f, "{v}"),
            Reg::Phys(p) => write!(f, "{p}"),
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of a stack frame slot (an abstract, word-sized local).
///
/// The interpreter gives every activation its own dense slot array, so frame
/// slots are function-local and need no byte offsets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameSlot(u32);

impl FrameSlot {
    /// Creates a frame slot from a dense index.
    pub fn from_index(index: usize) -> Self {
        FrameSlot(u32::try_from(index).expect("frame slot overflow"))
    }

    /// Returns the dense index of this slot.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FrameSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

impl fmt::Display for FrameSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// Identifier of a function within a [`Module`](crate::Module).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(u32);

impl FuncId {
    /// Creates a function id from a dense index.
    pub fn from_index(index: usize) -> Self {
        FuncId(u32::try_from(index).expect("function index overflow"))
    }

    /// Returns the dense index of this function.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// Identifier of a CFG edge within a [`Cfg`](crate::cfg::Cfg) snapshot.
///
/// Edge ids are only meaningful relative to the `Cfg` that produced them;
/// editing the function invalidates them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a dense index.
    pub fn from_index(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index overflow"))
    }

    /// Returns the dense index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_id_roundtrip() {
        let b = BlockId::from_index(7);
        assert_eq!(b.index(), 7);
        assert_eq!(format!("{b}"), "bb7");
    }

    #[test]
    fn reg_conversions() {
        let v: Reg = VReg::from_index(3).into();
        let p: Reg = PReg::new(5).into();
        assert!(v.is_virt());
        assert!(p.is_phys());
        assert_eq!(v.as_virt(), Some(VReg::from_index(3)));
        assert_eq!(v.as_phys(), None);
        assert_eq!(p.as_phys(), Some(PReg::new(5)));
        assert_eq!(format!("{v}"), "v3");
        assert_eq!(format!("{p}"), "r5");
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(BlockId::from_index(1) < BlockId::from_index(2));
        assert!(VReg::from_index(0) < VReg::from_index(10));
    }
}
