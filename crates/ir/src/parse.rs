//! Parser for the textual IR format produced by [`crate::display`].
//!
//! The grammar (one instruction per line; `;` starts a comment):
//!
//! ```text
//! module NAME
//! func @NAME(NPARAMS) {
//!   frame N
//!   vregs N
//! block NAME:
//!   [spill]|[csave]|[jump]   (optional origin tag)
//!   vD = li IMM
//!   vD = OP a, b             (b a register or an immediate)
//!   vD = mov a
//!   vD = load.KIND slotN
//!   store.KIND a, slotN
//!   [rD =] call @F(args) | call ext:N(args)
//!   jmp BLOCK
//!   br COND a, b, TAKEN, FALLTHROUGH
//!   ret [a]
//! }
//! ```

use crate::function::Function;
use crate::ids::{BlockId, FrameSlot, FuncId, PReg, Reg, VReg};
use crate::inst::{BinOp, Callee, Cond, Inst, InstKind, MemKind, Origin};
use crate::module::Module;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse failure, with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Maps parsed IR entities back to 1-based source lines, for reporting
/// post-parse diagnostics (verifier errors) against the input text.
#[derive(Clone, Debug, Default)]
pub struct SourceMap {
    funcs: HashMap<String, FuncSourceMap>,
}

#[derive(Clone, Debug, Default)]
struct FuncSourceMap {
    /// Line of the `func @name(...) {` header.
    header: usize,
    /// Line of each `block NAME:` label, indexed by block id.
    block_lines: Vec<usize>,
    /// Line of each instruction, indexed by block id then position.
    inst_lines: Vec<Vec<usize>>,
}

impl SourceMap {
    /// The most precise line known for `(func, block, instruction)`:
    /// the instruction's line, else the block label's, else the function
    /// header's.
    pub fn line(
        &self,
        func: &str,
        block: Option<BlockId>,
        inst_index: Option<usize>,
    ) -> Option<usize> {
        let f = self.funcs.get(func)?;
        if let Some(b) = block {
            if let (Some(i), Some(lines)) = (inst_index, f.inst_lines.get(b.index())) {
                if let Some(&l) = lines.get(i) {
                    return Some(l);
                }
            }
            if let Some(&l) = f.block_lines.get(b.index()) {
                if l != 0 {
                    return Some(l);
                }
            }
        }
        Some(f.header)
    }

    /// The source line of a verifier error raised against the parsed
    /// module.
    pub fn line_of(&self, err: &crate::verify::VerifyError) -> Option<usize> {
        self.line(err.func(), err.block(), err.inst_index())
    }
}

/// Parses a whole module.
///
/// # Errors
///
/// Returns the first syntax error encountered, with its line number.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    parse_module_traced(text).map(|(m, _)| m)
}

/// As [`parse_module`], also returning a [`SourceMap`] from parsed
/// entities back to source lines (for post-parse diagnostics such as
/// verifier errors).
///
/// # Errors
///
/// Returns the first syntax error encountered, with its line number.
pub fn parse_module_traced(text: &str) -> Result<(Module, SourceMap), ParseError> {
    // Pass 1: collect function names in order to resolve forward calls.
    let mut func_names = Vec::new();
    for line in text.lines() {
        let line = strip_comment(line).trim();
        if let Some(rest) = line.strip_prefix("func @") {
            if let Some(paren) = rest.find('(') {
                func_names.push(rest[..paren].to_string());
            }
        }
    }
    let name_map: HashMap<String, FuncId> = func_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), FuncId::from_index(i)))
        .collect();

    let mut module_name = String::from("unnamed");
    let mut module = None;
    let mut map = SourceMap::default();
    let mut parser = Parser::new(text, name_map);
    while let Some((lno, line)) = parser.peek_line() {
        if line.is_empty() {
            parser.next_line();
            continue;
        }
        if let Some(rest) = line.strip_prefix("module ") {
            module_name = rest.trim().to_string();
            parser.next_line();
            continue;
        }
        if line.starts_with("func @") {
            let (f, fmap) = parser.parse_function()?;
            map.funcs.insert(f.name().to_string(), fmap);
            module
                .get_or_insert_with(|| Module::new(module_name.clone()))
                .add_func(f);
            continue;
        }
        return err(lno, format!("unexpected line: `{line}`"));
    }
    Ok((module.unwrap_or_else(|| Module::new(module_name)), map))
}

/// Parses a single function. `call @name` operands are rejected (use
/// [`parse_module`]); `call ext:N` is allowed.
///
/// # Errors
///
/// Returns the first syntax error encountered, with its line number.
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    let mut parser = Parser::new(text, HashMap::new());
    while let Some((_, line)) = parser.peek_line() {
        if line.is_empty() || line.starts_with("module ") {
            parser.next_line();
            continue;
        }
        break;
    }
    parser.parse_function().map(|(f, _)| f)
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
    func_names: HashMap<String, FuncId>,
}

fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(i) => &line[..i],
        None => line,
    }
}

impl<'a> Parser<'a> {
    fn new(text: &'a str, func_names: HashMap<String, FuncId>) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, strip_comment(l).trim()))
            .collect();
        Parser {
            lines,
            pos: 0,
            func_names,
        }
    }

    fn peek_line(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next_line(&mut self) -> Option<(usize, &'a str)> {
        let l = self.lines.get(self.pos).copied();
        self.pos += 1;
        l
    }

    fn parse_function(&mut self) -> Result<(Function, FuncSourceMap), ParseError> {
        let (lno, header) = self.next_line().expect("caller checked");
        let rest = header.strip_prefix("func @").ok_or_else(|| ParseError {
            line: lno,
            message: "expected `func @name(params) {`".into(),
        })?;
        let open_paren = rest.find('(');
        let close = rest.find(')');
        let (name, nparams) = match (open_paren, close) {
            (Some(o), Some(c)) if c > o => {
                let name = &rest[..o];
                let n: usize = rest[o + 1..c].trim().parse().map_err(|_| ParseError {
                    line: lno,
                    message: "bad parameter count".into(),
                })?;
                (name, n)
            }
            _ => return err(lno, "expected `func @name(params) {`"),
        };
        if !rest[close.unwrap() + 1..].trim_start().starts_with('{') {
            return err(lno, "expected `{` after function header");
        }

        let mut func = Function::new(name);
        func.set_num_params(nparams);
        let mut fmap = FuncSourceMap {
            header: lno,
            ..FuncSourceMap::default()
        };

        // Pre-scan the body for block labels so forward branch targets
        // resolve; blocks get ids in order of their labels.
        let mut block_ids: HashMap<String, BlockId> = HashMap::new();
        let mut depth_pos = self.pos;
        while let Some(&(_, line)) = self.lines.get(depth_pos) {
            if line == "}" {
                break;
            }
            if let Some(rest) = line.strip_prefix("block ") {
                let label = rest.trim_end_matches(':').trim();
                let id = func.add_block(Some(label));
                block_ids.insert(label.to_string(), id);
                fmap.block_lines.resize(id.index() + 1, 0);
                fmap.inst_lines.resize(id.index() + 1, Vec::new());
            }
            depth_pos += 1;
        }

        let mut cur: Option<BlockId> = None;
        loop {
            let Some((lno, line)) = self.next_line() else {
                return err(0, "unexpected end of input inside function");
            };
            if line.is_empty() {
                continue;
            }
            if line == "}" {
                break;
            }
            if let Some(rest) = line.strip_prefix("frame ") {
                let n: usize = rest.trim().parse().map_err(|_| ParseError {
                    line: lno,
                    message: "bad frame size".into(),
                })?;
                func.frame_mut().reserve_slots(n);
                continue;
            }
            if let Some(rest) = line.strip_prefix("vregs ") {
                let n: usize = rest.trim().parse().map_err(|_| ParseError {
                    line: lno,
                    message: "bad vreg count".into(),
                })?;
                func.reserve_vregs(n);
                continue;
            }
            if let Some(rest) = line.strip_prefix("block ") {
                let label = rest.trim_end_matches(':').trim();
                let id = block_ids[label];
                fmap.block_lines[id.index()] = lno;
                cur = Some(id);
                continue;
            }
            let Some(block) = cur else {
                return err(lno, "instruction outside any block");
            };
            let inst = self.parse_inst(lno, line, &block_ids, &mut func)?;
            fmap.inst_lines[block.index()].push(lno);
            func.block_mut(block).insts.push(inst);
        }
        Ok((func, fmap))
    }

    fn parse_inst(
        &self,
        lno: usize,
        line: &str,
        blocks: &HashMap<String, BlockId>,
        func: &mut Function,
    ) -> Result<Inst, ParseError> {
        let (origin, line) = if let Some(rest) = line.strip_prefix("[spill]") {
            (Origin::Spill, rest.trim_start())
        } else if let Some(rest) = line.strip_prefix("[csave]") {
            (Origin::CalleeSave, rest.trim_start())
        } else if let Some(rest) = line.strip_prefix("[jump]") {
            (Origin::JumpBlock, rest.trim_start())
        } else {
            (Origin::Source, line)
        };

        let kind = self.parse_inst_kind(lno, line, blocks, func)?;
        Ok(Inst::with_origin(kind, origin))
    }

    fn parse_inst_kind(
        &self,
        lno: usize,
        line: &str,
        blocks: &HashMap<String, BlockId>,
        func: &mut Function,
    ) -> Result<InstKind, ParseError> {
        let lookup_block = |name: &str| -> Result<BlockId, ParseError> {
            blocks.get(name).copied().ok_or_else(|| ParseError {
                line: lno,
                message: format!("unknown block `{name}`"),
            })
        };

        // Terminators and non-defining instructions first.
        if let Some(rest) = line.strip_prefix("jmp ") {
            return Ok(InstKind::Jump {
                target: lookup_block(rest.trim())?,
            });
        }
        if let Some(rest) = line.strip_prefix("br ") {
            let mut parts = rest.splitn(2, ' ');
            let cond = parse_cond(lno, parts.next().unwrap_or(""))?;
            let ops = parts.next().unwrap_or("");
            let items: Vec<&str> = ops.split(',').map(str::trim).collect();
            if items.len() != 4 {
                return err(lno, "expected `br cond a, b, taken, fallthrough`");
            }
            return Ok(InstKind::Branch {
                cond,
                lhs: parse_reg(lno, items[0], func)?,
                rhs: parse_reg(lno, items[1], func)?,
                taken: lookup_block(items[2])?,
                fallthrough: lookup_block(items[3])?,
            });
        }
        if line == "ret" {
            return Ok(InstKind::Return { value: None });
        }
        if let Some(rest) = line.strip_prefix("ret ") {
            return Ok(InstKind::Return {
                value: Some(parse_reg(lno, rest.trim(), func)?),
            });
        }
        if let Some(rest) = line.strip_prefix("store.") {
            let (kind, rest) = parse_memkind(lno, rest)?;
            let items: Vec<&str> = rest.split(',').map(str::trim).collect();
            if items.len() != 2 {
                return err(lno, "expected `store.kind reg, slotN`");
            }
            return Ok(InstKind::Store {
                src: parse_reg(lno, items[0], func)?,
                slot: parse_slot(lno, items[1], func)?,
                kind,
            });
        }
        if line.starts_with("call ") {
            return self.parse_call(lno, line, None, func);
        }

        // `dst = ...` forms.
        let Some(eq) = line.find('=') else {
            return err(lno, format!("unrecognized instruction `{line}`"));
        };
        let dst = parse_reg(lno, line[..eq].trim(), func)?;
        let rhs = line[eq + 1..].trim();

        if let Some(rest) = rhs.strip_prefix("li ") {
            let imm = parse_imm(lno, rest.trim())?;
            return Ok(InstKind::LoadImm { dst, imm });
        }
        if let Some(rest) = rhs.strip_prefix("mov ") {
            return Ok(InstKind::Move {
                dst,
                src: parse_reg(lno, rest.trim(), func)?,
            });
        }
        if let Some(rest) = rhs.strip_prefix("load.") {
            let (kind, rest) = parse_memkind(lno, rest)?;
            return Ok(InstKind::Load {
                dst,
                slot: parse_slot(lno, rest.trim(), func)?,
                kind,
            });
        }
        if rhs.starts_with("call ") {
            return self.parse_call(lno, rhs, Some(dst), func);
        }

        // Binary op: `op a, b`.
        let mut parts = rhs.splitn(2, ' ');
        let op = parse_binop(lno, parts.next().unwrap_or(""))?;
        let ops = parts.next().unwrap_or("");
        let items: Vec<&str> = ops.split(',').map(str::trim).collect();
        if items.len() != 2 {
            return err(lno, "expected two operands");
        }
        let lhs = parse_reg(lno, items[0], func)?;
        if items[1].starts_with('v') || items[1].starts_with('r') {
            Ok(InstKind::Bin {
                op,
                dst,
                lhs,
                rhs: parse_reg(lno, items[1], func)?,
            })
        } else {
            Ok(InstKind::BinImm {
                op,
                dst,
                lhs,
                imm: parse_imm(lno, items[1])?,
            })
        }
    }

    fn parse_call(
        &self,
        lno: usize,
        text: &str,
        ret: Option<Reg>,
        func: &mut Function,
    ) -> Result<InstKind, ParseError> {
        let rest = text.strip_prefix("call ").expect("checked by caller");
        let open = rest.find('(').ok_or_else(|| ParseError {
            line: lno,
            message: "expected `(` in call".into(),
        })?;
        let close = rest.rfind(')').ok_or_else(|| ParseError {
            line: lno,
            message: "expected `)` in call".into(),
        })?;
        let target = rest[..open].trim();
        let callee = if let Some(name) = target.strip_prefix('@') {
            // Accept either a function name or a raw index.
            if let Ok(idx) = name.parse::<usize>() {
                Callee::Func(FuncId::from_index(idx))
            } else {
                match self.func_names.get(name) {
                    Some(id) => Callee::Func(*id),
                    None => return err(lno, format!("unknown function `@{name}`")),
                }
            }
        } else if let Some(n) = target.strip_prefix("ext:") {
            Callee::External(n.parse().map_err(|_| ParseError {
                line: lno,
                message: "bad external id".into(),
            })?)
        } else {
            return err(lno, format!("bad call target `{target}`"));
        };
        let args_text = rest[open + 1..close].trim();
        let mut args = Vec::new();
        if !args_text.is_empty() {
            for a in args_text.split(',') {
                args.push(parse_reg(lno, a.trim(), func)?);
            }
        }
        Ok(InstKind::Call { callee, args, ret })
    }
}

fn parse_imm(lno: usize, s: &str) -> Result<i64, ParseError> {
    s.parse().map_err(|_| ParseError {
        line: lno,
        message: format!("bad immediate `{s}`"),
    })
}

fn parse_reg(lno: usize, s: &str, func: &mut Function) -> Result<Reg, ParseError> {
    if let Some(n) = s.strip_prefix('v') {
        let idx: usize = n.parse().map_err(|_| ParseError {
            line: lno,
            message: format!("bad register `{s}`"),
        })?;
        func.reserve_vregs(idx + 1);
        return Ok(Reg::Virt(VReg::from_index(idx)));
    }
    if let Some(n) = s.strip_prefix('r') {
        let idx: u8 = n.parse().map_err(|_| ParseError {
            line: lno,
            message: format!("bad register `{s}`"),
        })?;
        return Ok(Reg::Phys(PReg::new(idx)));
    }
    err(lno, format!("bad register `{s}`"))
}

fn parse_slot(lno: usize, s: &str, func: &mut Function) -> Result<FrameSlot, ParseError> {
    let Some(n) = s.strip_prefix("slot") else {
        return err(lno, format!("bad slot `{s}`"));
    };
    let idx: usize = n.parse().map_err(|_| ParseError {
        line: lno,
        message: format!("bad slot `{s}`"),
    })?;
    func.frame_mut().reserve_slots(idx + 1);
    Ok(FrameSlot::from_index(idx))
}

fn parse_memkind(lno: usize, s: &str) -> Result<(MemKind, &str), ParseError> {
    for (kind, name) in [
        (MemKind::Data, "data"),
        (MemKind::Spill, "spill"),
        (MemKind::CalleeSave, "csave"),
    ] {
        if let Some(rest) = s.strip_prefix(name) {
            return Ok((kind, rest.trim_start()));
        }
    }
    err(lno, format!("bad memory kind in `{s}`"))
}

fn parse_binop(lno: usize, s: &str) -> Result<BinOp, ParseError> {
    Ok(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        _ => return err(lno, format!("unknown operation `{s}`")),
    })
}

fn parse_cond(lno: usize, s: &str) -> Result<Cond, ParseError> {
    Ok(match s {
        "eq" => Cond::Eq,
        "ne" => Cond::Ne,
        "lt" => Cond::Lt,
        "le" => Cond::Le,
        "gt" => Cond::Gt,
        "ge" => Cond::Ge,
        _ => return err(lno, format!("unknown condition `{s}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::function_to_string;
    use crate::verify::{verify_function, RegDiscipline};

    const SAMPLE: &str = r#"
func @demo(1) {
  frame 2
block A:
  v0 = mov r1
  v1 = add v0, 5
  store.data v1, slot0
  br lt v0, v1, C, B
block B:
  [csave] store.csave r11, slot1
  jmp C
block C:
  v2 = load.data slot0
  r0 = mov v2
  ret r0
}
"#;

    #[test]
    fn parses_and_roundtrips() {
        let f = parse_function(SAMPLE).expect("parse failed");
        assert_eq!(f.name(), "demo");
        assert_eq!(f.num_blocks(), 3);
        assert_eq!(f.num_params(), 1);
        assert!(verify_function(&f, RegDiscipline::Virtual).is_empty());
        let printed = function_to_string(&f);
        let f2 = parse_function(&printed).expect("reparse failed");
        assert_eq!(function_to_string(&f2), printed);
    }

    #[test]
    fn origin_tags_roundtrip() {
        let f = parse_function(SAMPLE).unwrap();
        let b = f.block_ids().nth(1).unwrap();
        assert_eq!(f.block(b).insts[0].origin, Origin::CalleeSave);
    }

    #[test]
    fn parses_module_with_calls() {
        let text = r#"
module demo
func @main(0) {
block entry:
  v0 = li 3
  r1 = mov v0
  r0 = call @helper(r1)
  v1 = mov r0
  r0 = mov v1
  ret r0
}
func @helper(1) {
block entry:
  v0 = mov r1
  r0 = call ext:4(v0)
  v1 = mov r0
  r0 = mov v1
  ret r0
}
"#;
        let m = parse_module(text).expect("module parse failed");
        assert_eq!(m.num_funcs(), 2);
        assert_eq!(m.name(), "demo");
        let main = m.func(m.func_by_name("main").unwrap());
        let has_call = main
            .block_ids()
            .flat_map(|b| main.block(b).insts.clone())
            .any(|i| {
                matches!(
                    i.kind,
                    InstKind::Call {
                        callee: Callee::Func(_),
                        ..
                    }
                )
            });
        assert!(has_call);
    }

    #[test]
    fn reports_unknown_block_with_line() {
        let text = "func @f(0) {\nblock A:\n  jmp NOPE\n}\n";
        let e = parse_function(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("NOPE"));
    }

    #[test]
    fn reports_bad_instruction() {
        let text = "func @f(0) {\nblock A:\n  frobnicate\n}\n";
        let e = parse_function(text).unwrap_err();
        assert!(e.message.contains("unrecognized"));
    }

    /// One assertion per error branch: every rejection carries the right
    /// line number and a message naming the offending text.
    #[test]
    fn every_error_branch_reports_line_and_context() {
        let wrap = |inst: &str| format!("func @f(0) {{\nblock A:\n  {inst}\n  ret\n}}\n");
        let cases: &[(&str, usize, &str)] = &[
            // Header errors.
            ("func @f 0) {\nblock A:\n  ret\n}\n", 1, "expected `func"),
            ("func @f(x) {\nblock A:\n  ret\n}\n", 1, "parameter count"),
            ("func @f(0)\nblock A:\n  ret\n}\n", 1, "expected `{`"),
            // Body / structure errors.
            ("func @f(0) {\n  frame x\nblock A:\n  ret\n}\n", 2, "frame"),
            ("func @f(0) {\n  vregs x\nblock A:\n  ret\n}\n", 2, "vreg"),
            ("func @f(0) {\n  v0 = li 1\n}\n", 2, "outside any block"),
            ("func @f(0) {\nblock A:\n  ret\n", 0, "end of input"),
        ];
        for (text, line, needle) in cases {
            let e = parse_function(text).unwrap_err();
            assert_eq!(e.line, *line, "line for {text:?} ({e})");
            assert!(e.message.contains(needle), "{e} lacks {needle:?}");
        }
        let inst_cases: &[(&str, &str)] = &[
            ("br lt v0, v1, B", "expected `br cond"),
            ("br xx v0, v1, A, A", "unknown condition"),
            ("store.data v0", "expected `store.kind"),
            ("store.frob v0, slot0", "bad memory kind"),
            ("v0 = load.data slotx", "bad slot `slotx`"),
            ("v0 = li banana", "bad immediate `banana`"),
            ("v0 = mov q3", "bad register `q3`"),
            ("v0 = add v1", "expected two operands"),
            ("v0 = frob v1, v2", "unknown operation `frob`"),
            ("v0 = call nowhere(v1)", "bad call target"),
            ("v0 = call @nope(v1)", "unknown function `@nope`"),
            ("v0 = call ext:x(v1)", "bad external id"),
            ("v0 = call @0 v1", "expected `(` in call"),
            ("v0 = call @0(v1", "expected `)` in call"),
            ("jmp NOWHERE", "unknown block `NOWHERE`"),
        ];
        for (inst, needle) in inst_cases {
            let e = parse_function(&wrap(inst)).unwrap_err();
            assert_eq!(e.line, 3, "line for {inst:?} ({e})");
            assert!(e.message.contains(needle), "{e} lacks {needle:?}");
        }
        // Module-level: stray line outside any function.
        let e = parse_module("module m\nwat\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unexpected line"));
    }

    #[test]
    fn display_carries_line_numbers() {
        let e = parse_function("func @f(0) {\nblock A:\n  jmp NOPE\n}\n").unwrap_err();
        let shown = e.to_string();
        assert!(shown.starts_with("line 3:"), "{shown}");
    }

    #[test]
    fn source_map_resolves_instructions_blocks_and_headers() {
        let text = "module m\n\nfunc @f(0) {\n  frame 1\nblock A:\n  v0 = li 1\n  \
                    store.data v0, slot0\n  ret\n}\n";
        let (m, map) = parse_module_traced(text).expect("parses");
        assert_eq!(m.num_funcs(), 1);
        let a = BlockId::from_index(0);
        assert_eq!(map.line("f", Some(a), Some(0)), Some(6));
        assert_eq!(map.line("f", Some(a), Some(2)), Some(8));
        // Out-of-range instruction falls back to the block label line.
        assert_eq!(map.line("f", Some(a), Some(99)), Some(5));
        // No block falls back to the function header.
        assert_eq!(map.line("f", None, None), Some(3));
        assert_eq!(map.line("nope", None, None), None);
        // line_of routes a verifier error through the same lookup.
        let err = crate::verify::VerifyError::BadSlot {
            func: "f".into(),
            block: a,
            index: 1,
        };
        assert_eq!(map.line_of(&err), Some(7));
    }
}
