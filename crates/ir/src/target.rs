//! Target machine description: register file and calling convention.

use crate::ids::PReg;
use std::fmt;

/// A malformed register convention, reported by [`Target::try_new`].
///
/// User-supplied conventions (e.g. from the target registry) surface
/// these as ordinary errors; the built-in presets use the infallible
/// [`Target::new`], which panics on them instead — a preset that fails
/// validation is a bug, not an input condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TargetError {
    /// A register appears in both the caller- and callee-saved sets.
    Overlap(PReg),
    /// A register appears twice within the caller- or callee-saved set.
    Duplicate(PReg),
    /// The return register is not caller-saved.
    RetNotCallerSaved(PReg),
    /// An argument register is not caller-saved.
    ArgNotCallerSaved(PReg),
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetError::Overlap(p) => {
                write!(f, "register {p} is both caller- and callee-saved")
            }
            TargetError::Duplicate(p) => {
                write!(f, "register {p} is listed twice in the register file")
            }
            TargetError::RetNotCallerSaved(p) => {
                write!(f, "return register {p} must be caller-saved")
            }
            TargetError::ArgNotCallerSaved(p) => {
                write!(f, "argument register {p} must be caller-saved")
            }
        }
    }
}

impl std::error::Error for TargetError {}

/// Description of the target machine's register file and register-usage
/// convention.
///
/// The paper's experiments target PA-RISC with 24 general-purpose registers
/// available for allocation, 13 of which are callee-saved;
/// [`Target::pa_risc_like`] reproduces that convention.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Target {
    name: String,
    caller_saved: Vec<PReg>,
    callee_saved: Vec<PReg>,
    ret_reg: PReg,
    arg_regs: Vec<PReg>,
}

impl Target {
    /// Creates a target from an explicit convention, validating it.
    ///
    /// # Errors
    ///
    /// Returns a [`TargetError`] if the caller- and callee-saved sets
    /// overlap, either set repeats a register, or the return/argument
    /// registers are not caller-saved.
    pub fn try_new(
        name: impl Into<String>,
        caller_saved: Vec<PReg>,
        callee_saved: Vec<PReg>,
        ret_reg: PReg,
        arg_regs: Vec<PReg>,
    ) -> Result<Self, TargetError> {
        for (i, p) in caller_saved.iter().enumerate() {
            if caller_saved[..i].contains(p) {
                return Err(TargetError::Duplicate(*p));
            }
            if callee_saved.contains(p) {
                return Err(TargetError::Overlap(*p));
            }
        }
        for (i, p) in callee_saved.iter().enumerate() {
            if callee_saved[..i].contains(p) {
                return Err(TargetError::Duplicate(*p));
            }
        }
        if !caller_saved.contains(&ret_reg) {
            return Err(TargetError::RetNotCallerSaved(ret_reg));
        }
        for a in &arg_regs {
            if !caller_saved.contains(a) {
                return Err(TargetError::ArgNotCallerSaved(*a));
            }
        }
        Ok(Target {
            name: name.into(),
            caller_saved,
            callee_saved,
            ret_reg,
            arg_regs,
        })
    }

    /// Creates a target from an explicit convention. Reserved for the
    /// built-in presets and tests; user-supplied conventions should go
    /// through [`Target::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if the convention fails [`Target::try_new`] validation.
    pub fn new(
        name: impl Into<String>,
        caller_saved: Vec<PReg>,
        callee_saved: Vec<PReg>,
        ret_reg: PReg,
        arg_regs: Vec<PReg>,
    ) -> Self {
        Target::try_new(name, caller_saved, callee_saved, ret_reg, arg_regs)
            .unwrap_or_else(|e| panic!("invalid built-in target convention: {e}"))
    }

    /// A PA-RISC-like convention matching the paper's experiments:
    /// 24 allocatable general-purpose registers, `r0..r10` caller-saved
    /// (11 registers, including the return register `r0` and argument
    /// registers `r1..r4`), and `r11..r23` callee-saved (13 registers).
    pub fn pa_risc_like() -> Self {
        let caller: Vec<PReg> = (0..11).map(PReg::new).collect();
        let callee: Vec<PReg> = (11..24).map(PReg::new).collect();
        let args: Vec<PReg> = (1..5).map(PReg::new).collect();
        Target::new("pa-risc-like", caller, callee, PReg::new(0), args)
    }

    /// A tiny target with 2 caller-saved and 2 callee-saved registers;
    /// useful in tests to force spilling and callee-saved pressure.
    pub fn tiny() -> Self {
        Target::new(
            "tiny",
            vec![PReg::new(0), PReg::new(1)],
            vec![PReg::new(2), PReg::new(3)],
            PReg::new(0),
            vec![PReg::new(1)],
        )
    }

    /// Returns the target's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers NOT preserved across calls.
    pub fn caller_saved(&self) -> &[PReg] {
        &self.caller_saved
    }

    /// Registers preserved across calls; using one in a procedure requires
    /// save/restore code, which is what the placement passes optimize.
    pub fn callee_saved(&self) -> &[PReg] {
        &self.callee_saved
    }

    /// The register holding a function's return value.
    pub fn ret_reg(&self) -> PReg {
        self.ret_reg
    }

    /// Registers carrying the first arguments of a call.
    pub fn arg_regs(&self) -> &[PReg] {
        &self.arg_regs
    }

    /// Every allocatable register, caller-saved first (the allocator's
    /// preference order for values that do not cross calls).
    pub fn allocatable(&self) -> impl Iterator<Item = PReg> + '_ {
        self.caller_saved.iter().chain(&self.callee_saved).copied()
    }

    /// Total number of allocatable registers.
    pub fn num_regs(&self) -> usize {
        self.caller_saved.len() + self.callee_saved.len()
    }

    /// The smallest dense index strictly greater than every register
    /// number (for building entity maps over physical registers).
    pub fn reg_index_limit(&self) -> usize {
        self.allocatable().map(|p| p.index() + 1).max().unwrap_or(0)
    }

    /// Returns `true` if `p` is callee-saved under this convention.
    pub fn is_callee_saved(&self, p: PReg) -> bool {
        self.callee_saved.contains(&p)
    }

    /// Returns `true` if `p` is caller-saved under this convention.
    pub fn is_caller_saved(&self, p: PReg) -> bool {
        self.caller_saved.contains(&p)
    }
}

impl Default for Target {
    /// The default target is the paper's PA-RISC-like convention.
    fn default() -> Self {
        Target::pa_risc_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pa_risc_convention_matches_paper() {
        let t = Target::pa_risc_like();
        assert_eq!(t.num_regs(), 24);
        assert_eq!(t.callee_saved().len(), 13);
        assert_eq!(t.caller_saved().len(), 11);
        assert!(t.is_caller_saved(t.ret_reg()));
        for a in t.arg_regs() {
            assert!(t.is_caller_saved(*a));
        }
        assert!(t.is_callee_saved(PReg::new(11)));
        assert!(!t.is_callee_saved(PReg::new(10)));
        assert_eq!(t.reg_index_limit(), 24);
        assert_eq!(t.allocatable().count(), 24);
    }

    #[test]
    fn overlapping_sets_rejected() {
        let err = Target::try_new(
            "bad",
            vec![PReg::new(0)],
            vec![PReg::new(0)],
            PReg::new(0),
            vec![],
        )
        .unwrap_err();
        assert_eq!(err, TargetError::Overlap(PReg::new(0)));
        assert!(err.to_string().contains("both caller- and callee-saved"));
    }

    #[test]
    fn duplicate_registers_rejected() {
        let err = Target::try_new(
            "bad",
            vec![PReg::new(0), PReg::new(0)],
            vec![],
            PReg::new(0),
            vec![],
        )
        .unwrap_err();
        assert_eq!(err, TargetError::Duplicate(PReg::new(0)));
        let err = Target::try_new(
            "bad",
            vec![PReg::new(0)],
            vec![PReg::new(1), PReg::new(1)],
            PReg::new(0),
            vec![],
        )
        .unwrap_err();
        assert_eq!(err, TargetError::Duplicate(PReg::new(1)));
    }

    #[test]
    fn callee_saved_ret_rejected() {
        let err = Target::try_new(
            "bad",
            vec![PReg::new(0)],
            vec![PReg::new(1)],
            PReg::new(1),
            vec![],
        )
        .unwrap_err();
        assert_eq!(err, TargetError::RetNotCallerSaved(PReg::new(1)));
    }

    #[test]
    fn callee_saved_arg_rejected() {
        let err = Target::try_new(
            "bad",
            vec![PReg::new(0)],
            vec![PReg::new(1)],
            PReg::new(0),
            vec![PReg::new(1)],
        )
        .unwrap_err();
        assert_eq!(err, TargetError::ArgNotCallerSaved(PReg::new(1)));
    }

    #[test]
    #[should_panic(expected = "invalid built-in target convention")]
    fn infallible_new_still_guards_presets() {
        Target::new(
            "bad",
            vec![PReg::new(0)],
            vec![PReg::new(0)],
            PReg::new(0),
            vec![],
        );
    }
}
