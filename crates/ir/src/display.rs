//! Textual printing of the IR.
//!
//! The output is accepted back by [`crate::parse`], so `print -> parse`
//! round-trips (up to cosmetic block names).

use crate::function::Function;
use crate::ids::BlockId;
use crate::inst::{Callee, Inst, InstKind, Origin};
use crate::module::Module;
use std::fmt::Write as _;

/// Returns the display name of a block (its cosmetic name, or `bbN`).
pub fn block_name(func: &Function, b: BlockId) -> String {
    match &func.block(b).name {
        Some(n) => n.clone(),
        None => format!("bb{}", b.index()),
    }
}

fn origin_tag(origin: Origin) -> &'static str {
    match origin {
        Origin::Source => "",
        Origin::Spill => "[spill] ",
        Origin::CalleeSave => "[csave] ",
        Origin::JumpBlock => "[jump] ",
    }
}

/// Renders one instruction (without trailing newline).
pub fn inst_to_string(func: &Function, inst: &Inst) -> String {
    let mut s = String::new();
    s.push_str(origin_tag(inst.origin));
    match &inst.kind {
        InstKind::LoadImm { dst, imm } => {
            let _ = write!(s, "{dst} = li {imm}");
        }
        InstKind::Bin { op, dst, lhs, rhs } => {
            let _ = write!(s, "{dst} = {op} {lhs}, {rhs}");
        }
        InstKind::BinImm { op, dst, lhs, imm } => {
            let _ = write!(s, "{dst} = {op} {lhs}, {imm}");
        }
        InstKind::Move { dst, src } => {
            let _ = write!(s, "{dst} = mov {src}");
        }
        InstKind::Load { dst, slot, kind } => {
            let _ = write!(s, "{dst} = load.{} {slot}", kind.suffix());
        }
        InstKind::Store { src, slot, kind } => {
            let _ = write!(s, "store.{} {src}, {slot}", kind.suffix());
        }
        InstKind::Call { callee, args, ret } => {
            if let Some(r) = ret {
                let _ = write!(s, "{r} = ");
            }
            match callee {
                Callee::Func(id) => {
                    let _ = write!(s, "call @{}", id.index());
                }
                Callee::External(n) => {
                    let _ = write!(s, "call ext:{n}");
                }
            }
            s.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{a}");
            }
            s.push(')');
        }
        InstKind::Jump { target } => {
            let _ = write!(s, "jmp {}", block_name(func, *target));
        }
        InstKind::Branch {
            cond,
            lhs,
            rhs,
            taken,
            fallthrough,
        } => {
            let _ = write!(
                s,
                "br {cond} {lhs}, {rhs}, {}, {}",
                block_name(func, *taken),
                block_name(func, *fallthrough)
            );
        }
        InstKind::Return { value } => match value {
            Some(v) => {
                let _ = write!(s, "ret {v}");
            }
            None => s.push_str("ret"),
        },
    }
    s
}

/// Renders a whole function.
pub fn function_to_string(func: &Function) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "func @{}({}) {{", func.name(), func.num_params());
    let _ = writeln!(s, "  frame {}", func.frame().num_slots());
    let _ = writeln!(s, "  vregs {}", func.num_vregs());
    for &b in func.layout() {
        let _ = writeln!(s, "block {}:", block_name(func, b));
        for inst in &func.block(b).insts {
            let _ = writeln!(s, "  {}", inst_to_string(func, inst));
        }
    }
    s.push_str("}\n");
    s
}

/// Renders a whole module.
pub fn module_to_string(module: &Module) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "module {}", module.name());
    for (_, f) in module.funcs() {
        s.push('\n');
        s.push_str(&function_to_string(f));
    }
    s
}

impl std::fmt::Display for Function {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&function_to_string(self))
    }
}

impl std::fmt::Display for Module {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&module_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ids::Reg;
    use crate::inst::{BinOp, Cond, MemKind};

    #[test]
    fn prints_readable_function() {
        let mut fb = FunctionBuilder::new("demo", 1);
        let a = fb.create_block(Some("A"));
        let b = fb.create_block(Some("B"));
        fb.switch_to(a);
        let p = fb.param(0);
        let t = fb.bin_imm(BinOp::Add, Reg::Virt(p), 5);
        let slot = fb.new_slot();
        fb.store(Reg::Virt(t), slot);
        fb.branch(Cond::Lt, Reg::Virt(p), Reg::Virt(t), a, b);
        fb.switch_to(b);
        let l = fb.load(slot);
        fb.ret(Some(Reg::Virt(l)));
        let f = fb.finish();
        let s = function_to_string(&f);
        assert!(s.contains("func @demo(1)"), "{s}");
        assert!(s.contains("block A:"), "{s}");
        assert!(s.contains("v1 = add v0, 5"), "{s}");
        assert!(s.contains("store.data v1, slot0"), "{s}");
        assert!(s.contains("br lt v0, v1, A, B"), "{s}");
        assert!(s.contains("ret r0"), "{s}");
        let _ = MemKind::Data.suffix();
    }
}
