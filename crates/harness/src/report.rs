//! Plain-text table formatting for experiment output.

/// A simple left-padded text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.chars().count());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = width[i] - c.chars().count();
                if i == 0 {
                    // Left-align the first column.
                    line.push_str(c);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(c);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a percentage with one decimal (the paper's Table 1
/// style).
pub fn pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("alpha"));
        // All rows equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(0.848), "84.8%");
        assert_eq!(pct(1.026), "102.6%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
