//! The experiments: one per table and figure of the paper.

use crate::report::{pct, Table};
use crate::runner::{run_benchmark, BenchResult, PipelineError, Technique};
use spillopt_benchgen::all_benchmarks;
use spillopt_core::SpillCostModel;
use spillopt_core::{
    chow_shrink_wrap, entry_exit_placement, fig1_example, hierarchical_placement, paper_example,
    placement_model_cost, CostModel, EdgeShares,
};
use spillopt_ir::Target;
use spillopt_pst::Pst;

/// The paper's Table 1 reference values: (benchmark, optimized/baseline,
/// shrinkwrap/baseline).
pub const PAPER_TABLE1: [(&str, f64, f64); 11] = [
    ("gzip", 0.830, 1.026),
    ("vpr", 0.995, 1.000),
    ("gcc", 0.596, 0.939),
    ("mcf", 1.000, 1.000),
    ("crafty", 0.440, 0.933),
    ("parser", 0.858, 0.990),
    ("perlbmk", 0.897, 0.996),
    ("gap", 0.885, 0.954),
    ("vortex", 0.988, 1.000),
    ("bzip2", 0.902, 1.005),
    ("twolf", 0.939, 1.080),
];

/// The paper's Table 2 reference values: (benchmark, shrink-wrap
/// incremental seconds, optimized incremental seconds, ratio).
pub const PAPER_TABLE2: [(&str, f64, f64, f64); 11] = [
    ("gzip", 0.42, 2.2, 5.24),
    ("vpr", 0.59, 4.74, 8.03),
    ("gcc", 115.10, 269.02, 2.34),
    ("mcf", 0.05, 0.24, 4.8),
    ("crafty", 0.34, 1.15, 3.38),
    ("parser", 1.04, 8.40, 8.08),
    ("perlbmk", 15.8, 62.99, 3.99),
    ("gap", 10.51, 64.67, 6.15),
    ("vortex", 5.23, 40.68, 7.78),
    ("bzip2", 0.50, 3.70, 7.40),
    ("twolf", 2.88, 7.58, 2.63),
];

/// Runs all eleven benchmarks (expensive; the repro binary caches the
/// result across table printers).
///
/// # Errors
///
/// Propagates the first pipeline failure.
pub fn run_all_benchmarks(target: &Target) -> Result<Vec<BenchResult>, PipelineError> {
    all_benchmarks()
        .iter()
        .map(|spec| run_benchmark(spec, target, &SpillCostModel::UNIT))
        .collect()
}

/// Runs one benchmark on every registered backend target and measures
/// the paper's Table 1 ratios per target — the cross-target evaluation
/// the paper's single-machine setup could not produce. Each target gets
/// its own module build (the generated code lowers against the target's
/// convention) and its own cost-model-driven placement decisions.
///
/// # Errors
///
/// Propagates the first pipeline failure.
pub fn cross_target(name: &str) -> Result<Table, PipelineError> {
    let spec = spillopt_benchgen::benchmark_by_name(name).ok_or_else(|| PipelineError {
        bench: name.to_string(),
        message: "unknown benchmark".to_string(),
    })?;
    let mut t = Table::new(vec![
        "target",
        "callee-saved",
        "pair",
        "optimized/baseline",
        "shrinkwrap/baseline",
        "optimized overhead",
    ]);
    for tspec in spillopt_targets::registry() {
        let target = tspec.to_target();
        let r = run_benchmark(&spec, &target, &tspec.costs)?;
        t.row(vec![
            tspec.name.to_string(),
            tspec.callee_saved.len().to_string(),
            tspec.costs.pair_size.to_string(),
            pct(r.ratio(Technique::Optimized)),
            pct(r.ratio(Technique::Shrinkwrap)),
            r.of(Technique::Optimized).dynamic_overhead.to_string(),
        ]);
    }
    Ok(t)
}

/// Figure 1: whether shrink-wrapping beats entry/exit depends purely on
/// the profile. Sweeps the shaded blocks' execution count and reports the
/// crossover.
pub fn fig1() -> String {
    let mut t = Table::new(vec![
        "busy-arm count",
        "entry/exit cost",
        "shrink-wrap cost",
        "winner",
    ]);
    let entry = 100u64;
    for busy in [0u64, 10, 25, 50] {
        let ex = fig1_example(entry, busy);
        let ee = entry_exit_placement(&ex.cfg, &ex.usage);
        let sw = chow_shrink_wrap(&ex.cfg, &ex.usage);
        let cost = |p: &spillopt_core::Placement| {
            placement_model_cost(
                CostModel::ExecutionCount,
                &ex.cfg,
                &ex.profile,
                p,
                &EdgeShares::none(),
            )
        };
        let (ce, cs) = (cost(&ee), cost(&sw));
        t.row(vec![
            busy.to_string(),
            ce.to_string(),
            cs.to_string(),
            if cs < ce {
                "shrink-wrap".to_string()
            } else if cs == ce {
                "tie".to_string()
            } else {
                "entry/exit".to_string()
            },
        ]);
    }
    format!(
        "Figure 1 — shrink-wrapping vs entry/exit crossover\n\
         (diamond with both arms shaded; procedure entered {entry} times;\n\
         the paper: shrink-wrapping wins only when the average shaded-block\n\
         count is below the procedure entry count)\n\n{}",
        t.render()
    )
}

/// Figures 2-4: the worked example, traced region by region under both
/// cost models.
pub fn fig2_walkthrough() -> String {
    let ex = paper_example();
    let pst = Pst::compute(&ex.cfg);
    let mut out = String::new();
    out.push_str("Figures 2-4 — the paper's worked example (blocks A..P)\n\n");

    let cost = |p: &spillopt_core::Placement| {
        placement_model_cost(
            CostModel::ExecutionCount,
            &ex.cfg,
            &ex.profile,
            p,
            &EdgeShares::none(),
        )
    };
    let ee = entry_exit_placement(&ex.cfg, &ex.usage);
    let sw = chow_shrink_wrap(&ex.cfg, &ex.usage);
    out.push_str(&format!(
        "entry/exit placement cost: {} (paper: 200)\n",
        cost(&ee)
    ));
    out.push_str(&format!(
        "Chow shrink-wrapping cost:  {} (paper: 250 — worse than entry/exit)\n\n",
        cost(&sw)
    ));

    for (model, label, paper) in [
        (
            CostModel::ExecutionCount,
            "execution count model (Figure 4a)",
            "final sets 1, 2, 5 — cost 190",
        ),
        (
            CostModel::JumpEdge,
            "jump edge model (Figure 4b)",
            "tie at 200 — save in A, restore in P",
        ),
    ] {
        let res = hierarchical_placement(&ex.cfg, &pst, &ex.usage, &ex.profile, model);
        out.push_str(&format!("--- hierarchical, {label} ---\n"));
        let mut t = Table::new(vec!["region", "blocks", "contained", "boundary", "action"]);
        for ev in &res.trace {
            let region = pst.region(ev.region);
            let blocks: String = region
                .blocks
                .iter()
                .map(|b| {
                    ex.func
                        .block(spillopt_ir::BlockId::from_index(b))
                        .name
                        .clone()
                        .unwrap_or_default()
                })
                .collect();
            t.row(vec![
                ev.region.to_string(),
                blocks,
                ev.contained_cost.to_string(),
                ev.boundary_cost.to_string(),
                if ev.replaced { "replace" } else { "keep" }.to_string(),
            ]);
        }
        out.push_str(&t.render());
        let total = placement_model_cost(
            model,
            &ex.cfg,
            &ex.profile,
            &res.placement,
            &EdgeShares::none(),
        );
        out.push_str(&format!("final cost {total}   (paper: {paper})\n\n"));
    }
    out
}

/// Figure 5: total dynamic spill-code overhead per benchmark for the
/// three placements (absolute counts; the measured analog of the paper's
/// bar chart).
pub fn fig5(results: &[BenchResult]) -> String {
    let mut t = Table::new(vec![
        "benchmark",
        "baseline",
        "shrinkwrap",
        "optimized",
        "optimized-exec*",
        "jump-insts(opt)",
    ]);
    for r in results {
        t.row(vec![
            r.name.clone(),
            r.of(Technique::Baseline).dynamic_overhead.to_string(),
            r.of(Technique::Shrinkwrap).dynamic_overhead.to_string(),
            r.of(Technique::Optimized).dynamic_overhead.to_string(),
            r.of(Technique::OptimizedExecModel)
                .dynamic_overhead
                .to_string(),
            r.of(Technique::Optimized).jump_overhead.to_string(),
        ]);
    }
    format!(
        "Figure 5 — dynamic spill code overhead (executed spill loads/stores\n\
         plus callee-saved saves/restores, scaled by the workload multiplier)\n\
         *ablation: execution-count model, not in the paper's figure\n\n{}",
        t.render()
    )
}

/// Table 1: overhead ratios relative to the baseline, with the paper's
/// numbers alongside.
pub fn table1(results: &[BenchResult]) -> String {
    let mut t = Table::new(vec![
        "benchmark",
        "optimized/baseline",
        "paper",
        "shrinkwrap/baseline",
        "paper",
    ]);
    let mut sum_opt = 0.0;
    let mut sum_sw = 0.0;
    for r in results {
        let paper = PAPER_TABLE1
            .iter()
            .find(|(n, _, _)| *n == r.name)
            .copied()
            .unwrap_or((/*name*/ "", f64::NAN, f64::NAN));
        let opt = r.ratio(Technique::Optimized);
        let sw = r.ratio(Technique::Shrinkwrap);
        sum_opt += opt;
        sum_sw += sw;
        t.row(vec![
            r.name.clone(),
            pct(opt),
            pct(paper.1),
            pct(sw),
            pct(paper.2),
        ]);
    }
    let n = results.len() as f64;
    t.row(vec![
        "Average".to_string(),
        pct(sum_opt / n),
        pct(0.848),
        pct(sum_sw / n),
        pct(0.993),
    ]);
    format!(
        "Table 1 — dynamic spill code overhead ratios vs entry/exit baseline\n\
         (paper columns: values from the original evaluation)\n\n{}",
        t.render()
    )
}

/// Table 2: incremental placement-pass time of shrink-wrapping vs the
/// hierarchical algorithm.
pub fn table2(results: &[BenchResult]) -> String {
    let mut t = Table::new(vec![
        "benchmark",
        "shrinkwrap (µs)",
        "optimized (µs)",
        "ratio",
        "paper ratio",
    ]);
    let mut sum_ratio = 0.0;
    let mut counted = 0usize;
    for r in results {
        let base = r.of(Technique::Baseline).pass_time;
        let sw = r.of(Technique::Shrinkwrap).pass_time.saturating_sub(base);
        let opt = r.of(Technique::Optimized).pass_time.saturating_sub(base);
        let ratio = if sw.as_nanos() > 0 {
            opt.as_secs_f64() / sw.as_secs_f64()
        } else {
            f64::NAN
        };
        if ratio.is_finite() {
            sum_ratio += ratio;
            counted += 1;
        }
        let paper = PAPER_TABLE2
            .iter()
            .find(|(n, ..)| *n == r.name)
            .map(|x| x.3)
            .unwrap_or(f64::NAN);
        t.row(vec![
            r.name.clone(),
            format!("{:.1}", sw.as_secs_f64() * 1e6),
            format!("{:.1}", opt.as_secs_f64() * 1e6),
            format!("{ratio:.2}"),
            format!("{paper:.2}"),
        ]);
    }
    let avg = if counted > 0 {
        sum_ratio / counted as f64
    } else {
        f64::NAN
    };
    format!(
        "Table 2 — incremental placement-pass time vs entry/exit placement\n\
         (the paper reports whole-compiler incremental seconds on an HP C3000;\n\
         we time the placement decisions on shared precomputed analyses —\n\
         SCCs and the PST are amortized outside every technique's timing, as\n\
         in the module driver — so the comparable number is the ratio:\n\
         paper average 5.44)\n\n{}\nmeasured average ratio: {avg:.2}\n",
        t.render()
    )
}

/// Sanity summary: the paper's guarantee checked on every benchmark.
pub fn guarantee_summary(results: &[BenchResult]) -> String {
    let mut lines = Vec::new();
    for r in results {
        let base = r.of(Technique::Baseline).dynamic_overhead;
        let sw = r.of(Technique::Shrinkwrap).dynamic_overhead;
        let opt = r.of(Technique::Optimized).dynamic_overhead;
        let ok = opt <= base && opt <= sw;
        lines.push(format!(
            "{:>8}: optimized {} ≤ min(baseline {}, shrinkwrap {}) — {}",
            r.name,
            opt,
            base,
            sw,
            if ok { "ok" } else { "VIOLATED" }
        ));
    }
    format!(
        "Guarantee — optimized never exceeds shrink-wrapping or entry/exit\n\n{}\n",
        lines.join("\n")
    )
}
