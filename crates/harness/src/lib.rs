//! # spillopt-harness
//!
//! Experiment driver for the *spillopt* reproduction of Lupo & Wilken
//! (CGO 2006): regenerates every table and figure of the paper's
//! evaluation on the synthetic SPEC CPU2000 stand-ins.
//!
//! * [`runner`] — the full pipeline per benchmark: generate → profile on
//!   the train workload → Chaitin/Briggs allocation → place callee-saved
//!   code with each technique → execute the ref workload → verify
//!   behaviour unchanged → measure dynamic spill-code overhead;
//! * [`experiments`] — Figure 1, the Figures 2-4 walkthrough, Figure 5,
//!   Table 1 and Table 2, each printed next to the paper's reference
//!   values;
//! * the `repro` binary drives them (`repro all`).
//!
//! # Examples
//!
//! ```no_run
//! use spillopt_harness::runner::{run_named_benchmark, Technique};
//! use spillopt_ir::Target;
//!
//! let result = run_named_benchmark("mcf", &Target::default()).unwrap();
//! let opt = result.of(Technique::Optimized).dynamic_overhead;
//! let base = result.of(Technique::Baseline).dynamic_overhead;
//! assert!(opt <= base);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod report;
pub mod runner;

#[allow(deprecated)]
pub use runner::run_benchmark_priced;
pub use runner::{run_benchmark, run_named_benchmark, BenchResult, Technique};
