//! Reproduction driver: regenerates the paper's tables and figures.
//!
//! ```text
//! repro fig1        Figure 1 crossover sweep
//! repro fig2        Figures 2-4 worked-example walkthrough
//! repro fig5        Figure 5 dynamic overhead per benchmark
//! repro table1      Table 1 overhead ratios (vs paper values)
//! repro table2      Table 2 incremental compile-time ratios
//! repro all          everything (default)
//! repro bench NAME   a single benchmark in detail
//! repro targets NAME one benchmark across every registered backend target
//! ```

use spillopt_harness::experiments;
use spillopt_harness::runner::{run_named_benchmark, Technique};
use spillopt_ir::Target;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let target = Target::default();

    match what {
        "fig1" => print!("{}", experiments::fig1()),
        "fig2" | "fig3" | "fig4" => print!("{}", experiments::fig2_walkthrough()),
        "fig5" | "table1" | "table2" | "all" => {
            eprintln!("running all 11 benchmarks (generate, profile, allocate, place, execute)...");
            let results = match experiments::run_all_benchmarks(&target) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("pipeline failure: {e}");
                    std::process::exit(1);
                }
            };
            match what {
                "fig5" => print!("{}", experiments::fig5(&results)),
                "table1" => print!("{}", experiments::table1(&results)),
                "table2" => print!("{}", experiments::table2(&results)),
                _ => {
                    print!("{}", experiments::fig1());
                    println!();
                    print!("{}", experiments::fig2_walkthrough());
                    println!();
                    print!("{}", experiments::fig5(&results));
                    println!();
                    print!("{}", experiments::table1(&results));
                    println!();
                    print!("{}", experiments::table2(&results));
                    println!();
                    print!("{}", experiments::guarantee_summary(&results));
                }
            }
        }
        "targets" => {
            let name = args.get(1).map(String::as_str).unwrap_or("crafty");
            eprintln!("running {name} across all registered targets...");
            match experiments::cross_target(name) {
                Ok(t) => print!("{}", t.render()),
                Err(e) => {
                    eprintln!("pipeline failure: {e}");
                    std::process::exit(1);
                }
            }
        }
        "bench" => {
            let name = args.get(1).map(String::as_str).unwrap_or("gzip");
            match run_named_benchmark(name, &target) {
                Ok(r) => {
                    println!(
                        "benchmark {name}: {} functions ({} using callee-saved), {} insts",
                        r.funcs, r.funcs_with_callee_saved, r.module_insts
                    );
                    for t in Technique::all() {
                        let x = r.of(t);
                        println!(
                            "  {:>15}: overhead {:>12}  (callee-saved {:>12}, jumps {:>8}, static {:>4}, pass {:?})",
                            t.name(),
                            x.dynamic_overhead,
                            x.callee_saved_overhead,
                            x.jump_overhead,
                            x.static_count,
                            x.pass_time
                        );
                    }
                    println!(
                        "  ratios: optimized {:.3}  shrinkwrap {:.3}",
                        r.ratio(Technique::Optimized),
                        r.ratio(Technique::Shrinkwrap)
                    );
                }
                Err(e) => {
                    eprintln!("failure: {e}");
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; try fig1|fig2|fig5|table1|table2|all|bench NAME|targets NAME"
            );
            std::process::exit(2);
        }
    }
}
