//! Calibration tool: solves each benchmark's flavor weights so that the
//! measured Table 1 ratios approach the paper's values.
//!
//! For every benchmark it builds four all-one-flavor variants of the
//! module, measures per-function (baseline, optimized, shrink-wrap) model
//! costs, averages them per flavor, then grid-searches the weight simplex
//! for the mix minimizing the distance to the paper's (optimized/baseline,
//! shrinkwrap/baseline) targets. Prints suggested `flavor_weights`.

use spillopt_benchgen::{all_benchmarks, build_bench, BenchSpec};
use spillopt_core::{
    chow_shrink_wrap, entry_exit_placement, hierarchical_placement, placement_cost,
    CalleeSavedUsage, CostModel,
};
use spillopt_harness::experiments::PAPER_TABLE1;
use spillopt_ir::{Cfg, Target};
use spillopt_profile::Machine;
use spillopt_pst::Pst;
use spillopt_regalloc::allocate;

/// Per-flavor aggregates: (total baseline, total optimized, total chow)
/// per function, averaged.
fn flavor_stats(spec: &BenchSpec, weights: (f64, f64, f64, f64), target: &Target) -> [f64; 3] {
    let mut spec = spec.clone();
    spec.flavor_weights = weights;
    let bench = build_bench(&spec, target);
    let mut vm = Machine::new(&bench.module, target);
    vm.set_fuel(1 << 30);
    for (f, args) in &bench.train_runs {
        let _ = vm.call(*f, args);
    }
    let mut totals = [0f64; 3];
    for f in bench.module.func_ids() {
        let profile = vm.edge_profile(f);
        let mut func = bench.module.func(f).clone();
        allocate(&mut func, target, Some(&profile));
        let cfg = Cfg::compute(&func);
        let usage = CalleeSavedUsage::from_function(&func, &cfg, target);
        if usage.is_empty() {
            continue;
        }
        let pst = Pst::compute(&cfg);
        let ee = entry_exit_placement(&cfg, &usage);
        let sw = chow_shrink_wrap(&cfg, &usage);
        let opt =
            hierarchical_placement(&cfg, &pst, &usage, &profile, CostModel::JumpEdge).placement;
        totals[0] += placement_cost(CostModel::JumpEdge, &cfg, &profile, &ee).as_f64();
        totals[1] += placement_cost(CostModel::JumpEdge, &cfg, &profile, &opt).as_f64();
        totals[2] += placement_cost(CostModel::JumpEdge, &cfg, &profile, &sw).as_f64();
    }
    let n = bench.module.num_funcs() as f64;
    [totals[0] / n, totals[1] / n, totals[2] / n]
}

fn main() {
    let target = Target::default();
    let only: Option<String> = std::env::args().nth(1);
    for spec in all_benchmarks() {
        if let Some(o) = &only {
            if o != spec.name {
                continue;
            }
        }
        if spec.name == "mcf" {
            continue; // already exact
        }
        let paper = PAPER_TABLE1
            .iter()
            .find(|(n, ..)| *n == spec.name)
            .copied()
            .unwrap();
        // Measure pure-flavor component stats (baseline, opt, sw) per
        // function.
        let pure = [
            flavor_stats(&spec, (1.0, 0.0, 0.0, 0.0), &target),
            flavor_stats(&spec, (0.0, 1.0, 0.0, 0.0), &target),
            flavor_stats(&spec, (0.0, 0.0, 1.0, 0.0), &target),
            flavor_stats(&spec, (0.0, 0.0, 0.0, 1.0), &target),
        ];
        eprintln!(
            "{}: components base/opt/sw per flavor: {:?}",
            spec.name, pure
        );
        // Grid search the simplex (step 0.02) for the best mix.
        let mut best = ((1.0, 0.0, 0.0, 0.0), f64::MAX);
        let steps = 25usize;
        for a in 0..=steps {
            for b in 0..=steps - a {
                for c in 0..=steps - a - b {
                    let d = steps - a - b - c;
                    let w = [
                        a as f64 / steps as f64,
                        b as f64 / steps as f64,
                        c as f64 / steps as f64,
                        d as f64 / steps as f64,
                    ];
                    let base: f64 = (0..4).map(|f| w[f] * pure[f][0]).sum();
                    if base <= 0.0 {
                        continue;
                    }
                    let opt: f64 = (0..4).map(|f| w[f] * pure[f][1]).sum::<f64>() / base;
                    let sw: f64 = (0..4).map(|f| w[f] * pure[f][2]).sum::<f64>() / base;
                    let err = (opt - paper.1).powi(2) + (sw - paper.2).powi(2);
                    if err < best.1 {
                        best = ((w[0], w[1], w[2], w[3]), err);
                    }
                }
            }
        }
        let (w, err) = best;
        println!(
            "retune('{}', {{'flavor_weights':'({:.2}, {:.2}, {:.2}, {:.2})'}})  # err {:.4}",
            spec.name, w.0, w.1, w.2, w.3, err
        );
    }
}
