//! Inspect per-function callee-saved clusters and per-technique model
//! costs for one benchmark.

use spillopt_benchgen::{benchmark_by_name, build_bench};
use spillopt_core::{
    chow_shrink_wrap, dataflow::busy_clusters, entry_exit_placement, hierarchical_placement,
    modified_shrink_wrap, placement_model_cost, CalleeSavedUsage, CostModel, EdgeShares,
};
use spillopt_ir::{Cfg, Target};
use spillopt_profile::Machine;
use spillopt_pst::Pst;
use spillopt_regalloc::allocate;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gzip".into());
    let target = Target::default();
    let bench = build_bench(&benchmark_by_name(&name).unwrap(), &target);
    let mut vm = Machine::new(&bench.module, &target);
    vm.set_fuel(1 << 30);
    for (f, args) in &bench.train_runs {
        vm.call(*f, args).unwrap();
    }
    let profiles: Vec<_> = bench
        .module
        .func_ids()
        .map(|f| vm.edge_profile(f))
        .collect();

    for f in bench.module.func_ids() {
        let mut func = bench.module.func(f).clone();
        allocate(&mut func, &target, Some(&profiles[f.index()]));
        let cfg = Cfg::compute(&func);
        let usage = CalleeSavedUsage::from_function(&func, &cfg, &target);
        if usage.is_empty() {
            continue;
        }
        let profile = &profiles[f.index()];
        let pst = Pst::compute(&cfg);
        let ee = entry_exit_placement(&cfg, &usage);
        let sw = chow_shrink_wrap(&cfg, &usage);
        let init = modified_shrink_wrap(&cfg, &usage);
        let hier = hierarchical_placement(&cfg, &pst, &usage, profile, CostModel::JumpEdge);
        let cost = |p: &spillopt_core::Placement| {
            placement_model_cost(
                CostModel::ExecutionCount,
                &cfg,
                profile,
                p,
                &EdgeShares::none(),
            )
        };
        println!(
            "{} blocks={} entry_count={}: ee={} sw={} init={} opt={}",
            func.name(),
            func.num_blocks(),
            profile.entry_count(),
            cost(&ee),
            cost(&sw),
            cost(&init.placement()),
            cost(&hier.placement),
        );
        for (reg, busy) in usage.regs() {
            let w = spillopt_core::dataflow::chow_grow(
                &cfg,
                &spillopt_ir::analysis::loops::sccs(&cfg),
                busy,
            );
            let clusters = busy_clusters(&cfg, busy);
            let sizes: Vec<String> = clusters
                .iter()
                .map(|c| {
                    let cnt: u64 = c
                        .iter()
                        .map(|b| profile.block_count(spillopt_ir::BlockId::from_index(b)))
                        .max()
                        .unwrap_or(0);
                    format!("{}blk@{}", c.count(), cnt)
                })
                .collect();
            println!(
                "    {reg}: {} clusters [{}] chowW={}/{}",
                clusters.len(),
                sizes.join(", "),
                w.count(),
                cfg.num_blocks()
            );
        }
    }
}
