//! The full experimental pipeline for one benchmark: generate → profile
//! (train) → allocate → place (each technique) → execute (ref) → measure.

use spillopt_benchgen::{build_bench, BenchSpec, GeneratedBench};
use spillopt_core::{
    chow_shrink_wrap_with, entry_exit_placement, hierarchical_placement_vs, insert_placement,
    CalleeSavedUsage, CostModel, Placement, SpillCostModel,
};
use spillopt_ir::analysis::loops::{sccs, CyclicRegion};
use spillopt_ir::{Cfg, FuncId, Module, RegDiscipline, Target};
use spillopt_profile::{EdgeProfile, ExecCounts, Machine};
use spillopt_pst::Pst;
use spillopt_regalloc::allocate;
use std::time::{Duration, Instant};

/// The placement techniques compared by the paper's evaluation, plus the
/// execution-count-model ablation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Technique {
    /// Save at entry, restore at exits (the paper's *Baseline*).
    Baseline,
    /// Chow's shrink-wrapping (the paper's *Shrinkwrap*).
    Shrinkwrap,
    /// Hierarchical placement, jump-edge cost model (the paper's
    /// *Optimized*).
    Optimized,
    /// Hierarchical placement, execution-count cost model (ablation; the
    /// paper does not evaluate it because spill code on jump edges is not
    /// executable without jump blocks — we insert the jump blocks and
    /// measure what the model ignored).
    OptimizedExecModel,
}

impl Technique {
    /// All techniques, in reporting order.
    pub fn all() -> [Technique; 4] {
        [
            Technique::Baseline,
            Technique::Shrinkwrap,
            Technique::Optimized,
            Technique::OptimizedExecModel,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Technique::Baseline => "baseline",
            Technique::Shrinkwrap => "shrinkwrap",
            Technique::Optimized => "optimized",
            Technique::OptimizedExecModel => "optimized-exec",
        }
    }
}

/// Measured outcome of one technique on one benchmark.
#[derive(Clone, Debug, Default)]
pub struct TechniqueResult {
    /// Dynamic spill-code overhead (the paper's Figure 5 metric: executed
    /// allocator spill loads/stores + callee-saved saves/restores).
    pub dynamic_overhead: u64,
    /// Executed callee-saved saves/restores only.
    pub callee_saved_overhead: u64,
    /// Executed jump-block jump instructions (not part of the Figure 5
    /// metric; the jump-edge model's subject).
    pub jump_overhead: u64,
    /// Static save/restore instructions placed.
    pub static_count: usize,
    /// Placement pass time (placement computation only, summed over
    /// functions).
    pub pass_time: Duration,
}

/// Measured outcome of one benchmark across all techniques.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Results per technique (indexed via [`Technique::all`] order).
    pub techniques: Vec<(Technique, TechniqueResult)>,
    /// Functions that used at least one callee-saved register.
    pub funcs_with_callee_saved: usize,
    /// Total functions.
    pub funcs: usize,
    /// Static module size (instructions) after allocation, before
    /// placement.
    pub module_insts: usize,
    /// Workload scale multiplier (applied to the reported overheads).
    pub scale: u64,
}

impl BenchResult {
    /// Result of one technique.
    pub fn of(&self, t: Technique) -> &TechniqueResult {
        &self
            .techniques
            .iter()
            .find(|(x, _)| *x == t)
            .expect("technique present")
            .1
    }

    /// The paper's Table 1 ratio: technique overhead / baseline overhead
    /// (1.0 when the baseline overhead is zero — no callee-saved use, as
    /// in mcf).
    pub fn ratio(&self, t: Technique) -> f64 {
        let base = self.of(Technique::Baseline).dynamic_overhead;
        if base == 0 {
            1.0
        } else {
            self.of(t).dynamic_overhead as f64 / base as f64
        }
    }
}

/// Errors from the pipeline (all indicate bugs, not input conditions; the
/// harness surfaces them instead of panicking so the repro binary can
/// report which benchmark failed).
#[derive(Debug)]
pub struct PipelineError {
    /// Benchmark name.
    pub bench: String,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.bench, self.message)
    }
}

impl std::error::Error for PipelineError {}

/// Runs the full measured pipeline for one benchmark spec, with the
/// hierarchical placement decisions priced by `costs` (the measured
/// overheads stay what the interpreter counts — only the placement
/// choices change; [`SpillCostModel::UNIT`] reproduces the paper's
/// PA-RISC accounting).
///
/// This is the harness's one entry point — the measured counterpart of
/// the driver's `Session` facade (which predicts costs; this executes
/// the placed module on the interpreter and counts).
///
/// # Errors
///
/// Returns [`PipelineError`] if any stage fails or any technique changes
/// program behaviour.
pub fn run_benchmark(
    spec: &BenchSpec,
    target: &Target,
    costs: &SpillCostModel,
) -> Result<BenchResult, PipelineError> {
    let bench = build_bench(spec, target);
    let fail = |message: String| PipelineError {
        bench: bench.name.clone(),
        message,
    };

    // --- Train run: profiles on the virtual module. ---
    let mut vm = Machine::new(&bench.module, target);
    vm.set_fuel(1 << 30);
    for (f, args) in &bench.train_runs {
        vm.call(*f, args)
            .map_err(|e| fail(format!("train run failed: {e}")))?;
    }
    let train_profiles: Vec<EdgeProfile> = bench
        .module
        .func_ids()
        .map(|f| vm.edge_profile(f))
        .collect();

    // --- Reference (ref) outputs on the virtual module. ---
    let reference = execute(&bench.module, target, &bench.ref_runs)
        .map_err(|e| fail(format!("ref run failed: {e}")))?;

    // --- Register allocation (shared by all techniques). ---
    let mut alloc_module = bench.module.clone();
    for f in bench.module.func_ids() {
        allocate(
            alloc_module.func_mut(f),
            target,
            Some(&train_profiles[f.index()]),
        );
        let errs = spillopt_ir::verify_function(alloc_module.func(f), RegDiscipline::Physical);
        if !errs.is_empty() {
            return Err(fail(format!("post-RA verification failed: {errs:?}")));
        }
    }

    // Per-function placement inputs. The CFG-derived analyses (SCCs for
    // Chow's artificial loop flow, the PST for the hierarchical passes)
    // are computed once per function here and borrowed by every
    // technique below, mirroring the module driver's shared
    // `AnalysisCache`.
    let cfgs: Vec<Cfg> = alloc_module
        .func_ids()
        .map(|f| Cfg::compute(alloc_module.func(f)))
        .collect();
    let usages: Vec<CalleeSavedUsage> = alloc_module
        .func_ids()
        .map(|f| CalleeSavedUsage::from_function(alloc_module.func(f), &cfgs[f.index()], target))
        .collect();
    let analyses: Vec<Option<(Vec<CyclicRegion>, Pst)>> = alloc_module
        .func_ids()
        .map(|f| {
            let i = f.index();
            if usages[i].is_empty() {
                None
            } else {
                Some((sccs(&cfgs[i]), Pst::compute(&cfgs[i])))
            }
        })
        .collect();
    let funcs_with_callee_saved = usages.iter().filter(|u| !u.is_empty()).count();
    let module_insts = alloc_module.num_insts();

    let mut techniques = Vec::new();
    for technique in Technique::all() {
        let mut placed = alloc_module.clone();
        let mut static_count = 0usize;
        let mut pass_time = Duration::ZERO;
        for f in bench.module.func_ids() {
            let cfg = &cfgs[f.index()];
            let usage = &usages[f.index()];
            if usage.is_empty() {
                continue;
            }
            let profile = &train_profiles[f.index()];
            let (cyclic, pst) = analyses[f.index()]
                .as_ref()
                .expect("analyses for used func");
            let (placement, elapsed) =
                time_placement(technique, cfg, cyclic, pst, usage, profile, costs);
            pass_time += elapsed;
            let errs = spillopt_core::check_placement(cfg, usage, &placement);
            if !errs.is_empty() {
                return Err(fail(format!(
                    "{}: invalid placement in {}: {errs:?}",
                    technique.name(),
                    placed.func(f).name()
                )));
            }
            static_count += placement.static_count();
            insert_placement(placed.func_mut(f), cfg, &placement);
        }

        let (outputs, counts) = execute_counted(&placed, target, &bench.ref_runs)
            .map_err(|e| fail(format!("{}: execution failed: {e}", technique.name())))?;
        if outputs != reference {
            return Err(fail(format!(
                "{}: program behaviour changed",
                technique.name()
            )));
        }
        techniques.push((
            technique,
            TechniqueResult {
                dynamic_overhead: counts.spill_code_overhead() * bench.scale,
                callee_saved_overhead: counts.callee_save_overhead() * bench.scale,
                jump_overhead: counts.jump_block_jumps * bench.scale,
                static_count,
                pass_time,
            },
        ));
    }

    Ok(BenchResult {
        name: bench.name.clone(),
        techniques,
        funcs_with_callee_saved,
        funcs: bench.module.num_funcs(),
        module_insts,
        scale: bench.scale,
    })
}

/// Times the placement computation proper. The analyses (`cyclic`, `pst`)
/// are shared across techniques and amortized outside the timed section:
/// the reported pass time is the paper's *incremental* cost of choosing a
/// technique, given analyses the compiler needs anyway.
fn time_placement(
    technique: Technique,
    cfg: &Cfg,
    cyclic: &[CyclicRegion],
    pst: &Pst,
    usage: &CalleeSavedUsage,
    profile: &EdgeProfile,
    costs: &SpillCostModel,
) -> (Placement, Duration) {
    // The hierarchical variants end with a never-worse comparison
    // against shrink-wrapping; that baseline is computed *outside* the
    // timed section (a real compiler pipeline has it anyway, and the
    // reported time stays the incremental cost of the technique).
    let chow = match technique {
        Technique::Optimized | Technique::OptimizedExecModel => {
            Some(chow_shrink_wrap_with(cfg, cyclic, usage))
        }
        _ => None,
    };
    let start = Instant::now();
    let placement = match technique {
        Technique::Baseline => entry_exit_placement(cfg, usage),
        Technique::Shrinkwrap => chow_shrink_wrap_with(cfg, cyclic, usage),
        Technique::Optimized => {
            hierarchical_placement_vs(
                cfg,
                pst,
                usage,
                profile,
                CostModel::JumpEdge,
                costs,
                chow.as_ref().expect("computed above"),
            )
            .placement
        }
        Technique::OptimizedExecModel => {
            hierarchical_placement_vs(
                cfg,
                pst,
                usage,
                profile,
                CostModel::ExecutionCount,
                costs,
                chow.as_ref().expect("computed above"),
            )
            .placement
        }
    };
    (placement, start.elapsed())
}

/// Executes a workload and returns the outputs.
pub fn execute(
    module: &Module,
    target: &Target,
    runs: &[(FuncId, Vec<i64>)],
) -> Result<Vec<i64>, spillopt_profile::ExecError> {
    Ok(execute_counted(module, target, runs)?.0)
}

/// Executes a workload and returns outputs plus dynamic counters.
pub fn execute_counted(
    module: &Module,
    target: &Target,
    runs: &[(FuncId, Vec<i64>)],
) -> Result<(Vec<i64>, ExecCounts), spillopt_profile::ExecError> {
    let mut m = Machine::new(module, target);
    m.set_fuel(1 << 30);
    let mut out = Vec::with_capacity(runs.len());
    for (f, args) in runs {
        out.push(m.call(*f, args)?);
    }
    Ok((out, m.counts().clone()))
}

/// Profiles a workload per function (used by examples and benches).
pub fn profile_workload(
    module: &Module,
    target: &Target,
    runs: &[(FuncId, Vec<i64>)],
) -> Result<Vec<EdgeProfile>, spillopt_profile::ExecError> {
    let mut m = Machine::new(module, target);
    m.set_fuel(1 << 30);
    for (f, args) in runs {
        m.call(*f, args)?;
    }
    Ok(module.func_ids().map(|f| m.edge_profile(f)).collect())
}

/// The historical priced variant; [`run_benchmark`] now takes the cost
/// model directly.
///
/// # Errors
///
/// Returns [`PipelineError`] if any stage fails or any technique changes
/// program behaviour.
#[deprecated(
    since = "0.2.0",
    note = "`run_benchmark` now takes the cost model directly"
)]
pub fn run_benchmark_priced(
    spec: &BenchSpec,
    target: &Target,
    costs: &SpillCostModel,
) -> Result<BenchResult, PipelineError> {
    run_benchmark(spec, target, costs)
}

/// Convenience: generate and run one named benchmark under the paper's
/// unit cost model.
///
/// # Panics
///
/// Panics on unknown benchmark names.
pub fn run_named_benchmark(name: &str, target: &Target) -> Result<BenchResult, PipelineError> {
    let spec = spillopt_benchgen::benchmark_by_name(name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    run_benchmark(&spec, target, &SpillCostModel::UNIT)
}

/// Returns a generated benchmark for external tooling (benches).
pub fn generated(name: &str, target: &Target) -> GeneratedBench {
    let spec = spillopt_benchgen::benchmark_by_name(name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    build_bench(&spec, target)
}
