//! # spillopt-targets
//!
//! Concrete backend targets: a registry of [`TargetSpec`]s, each
//! describing one machine's register-file split (caller-/callee-saved,
//! argument and return registers), frame/stack alignment rules, and a
//! [`SpillCostModel`] pricing the instructions the placement passes
//! insert.
//!
//! The paper evaluates on PA-RISC only (13 callee-saved registers,
//! uniform one-instruction saves and restores, jump-edge costs). The
//! registry generalizes that machine model to conventions people compile
//! for today:
//!
//! | target          | callee-saved | save pricing                        |
//! |-----------------|--------------|-------------------------------------|
//! | `pa-risc-like`  | 13           | uniform (the paper's Table 1 setup) |
//! | `x86-64-sysv`   | 6            | cheap `push`/`pop` at entry/exits   |
//! | `aarch64-aapcs64` | 10         | paired `stp`/`ldp` (2 regs/insn)    |
//! | `riscv64-lp64`  | 12           | uniform, RISC-like                  |
//! | `tiny`          | 2            | uniform; test target                |
//!
//! Registers are the IR's abstract `r0..rN`; each spec documents its
//! mapping onto the real machine's register names in
//! [`TargetSpec::reg_note`]. Callee-saved counts stay ≤ 13 so every
//! jump- and pair-sharing divisor divides
//! [`spillopt_core::COST_SCALE`] and all cost arithmetic remains exact.
//!
//! # Examples
//!
//! ```
//! use spillopt_targets::{registry, spec_by_name};
//!
//! assert!(registry().len() >= 4);
//! let aarch64 = spec_by_name("aarch64-aapcs64").unwrap();
//! let target = aarch64.to_target();
//! assert_eq!(target.callee_saved().len(), 10);
//! assert_eq!(aarch64.costs.pair_size, 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use spillopt_core::{InsnCost, SpillCostModel};
use spillopt_ir::{PReg, Target, TargetError};

/// One backend target: calling convention, stack discipline, and spill
/// instruction costs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TargetSpec {
    /// Stable registry name (CLI `--target` value).
    pub name: &'static str,
    /// One-line human description.
    pub description: &'static str,
    /// How the IR's abstract `rN` numbers map onto the machine's
    /// registers.
    pub reg_note: &'static str,
    /// Caller-saved (call-clobbered) register numbers.
    pub caller_saved: Vec<u8>,
    /// Callee-saved (call-preserved) register numbers — the registers
    /// the placement passes insert save/restore code for.
    pub callee_saved: Vec<u8>,
    /// The return-value register (must be caller-saved).
    pub ret_reg: u8,
    /// Argument registers, in order (must be caller-saved).
    pub arg_regs: Vec<u8>,
    /// Required stack-pointer alignment at call sites, in bytes.
    pub stack_align: u32,
    /// Size of one callee-saved spill slot, in bytes.
    pub slot_size: u32,
    /// The target's spill instruction cost model.
    pub costs: SpillCostModel,
}

impl TargetSpec {
    /// Builds the [`Target`] convention this spec describes, validating
    /// it.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`TargetError`] for malformed
    /// (user-supplied) conventions.
    pub fn try_to_target(&self) -> Result<Target, TargetError> {
        Target::try_new(
            self.name,
            self.caller_saved.iter().copied().map(PReg::new).collect(),
            self.callee_saved.iter().copied().map(PReg::new).collect(),
            PReg::new(self.ret_reg),
            self.arg_regs.iter().copied().map(PReg::new).collect(),
        )
    }

    /// Builds the [`Target`] convention this spec describes.
    ///
    /// # Panics
    ///
    /// Panics if the spec is malformed; registry specs are validated by
    /// tests, so this only fires for hand-built specs (use
    /// [`TargetSpec::try_to_target`] for those).
    pub fn to_target(&self) -> Target {
        self.try_to_target()
            .unwrap_or_else(|e| panic!("invalid target spec `{}`: {e}", self.name))
    }

    /// The frame bytes needed to spill every callee-saved register,
    /// rounded up to the stack alignment — the worst-case frame growth
    /// an entry/exit placement implies.
    pub fn max_spill_area(&self) -> u32 {
        let raw = self.callee_saved.len() as u32 * self.slot_size;
        raw.next_multiple_of(self.stack_align.max(1))
    }
}

/// The paper's PA-RISC-like machine: 24 allocatable registers, 13
/// callee-saved, every spill instruction costs one unit.
pub fn pa_risc_like() -> TargetSpec {
    TargetSpec {
        name: "pa-risc-like",
        description: "the paper's PA-RISC convention: 13 callee-saved of 24, uniform costs",
        reg_note: "r0=ret, r1-r4=args, r0-r10 caller-saved, r11-r23 callee-saved (as in the paper)",
        caller_saved: (0..11).collect(),
        callee_saved: (11..24).collect(),
        ret_reg: 0,
        arg_regs: (1..5).collect(),
        stack_align: 8,
        slot_size: 8,
        costs: SpillCostModel::UNIT,
    }
}

/// x86-64 System V: 15 allocatable general-purpose registers (RSP is
/// reserved), only 6 callee-saved, and cheap one-byte `push`/`pop`
/// prologue/epilogue saves (modeled at half a `mov`-to-frame).
pub fn x86_64_sysv() -> TargetSpec {
    TargetSpec {
        name: "x86-64-sysv",
        description: "x86-64 System V: 6 callee-saved of 15, push/pop entry saves at half cost",
        reg_note: "r0=rax(ret), r1=rdi r2=rsi r3=rdx r4=rcx r5=r8 r6=r9 (args), r7=r10 r8=r11, \
                   r9=rbx r10=rbp r11-r14=r12-r15 callee-saved",
        caller_saved: (0..9).collect(),
        callee_saved: (9..15).collect(),
        ret_reg: 0,
        arg_regs: (1..7).collect(),
        stack_align: 16,
        slot_size: 8,
        costs: SpillCostModel {
            save: InsnCost::ONE,
            restore: InsnCost::ONE,
            entry_save: InsnCost::new(1, 2),
            exit_restore: InsnCost::new(1, 2),
            jump: InsnCost::ONE,
            pair_size: 1,
        },
    }
}

/// AArch64 AAPCS64: 26 allocatable registers (x16-x18, fp, lr reserved),
/// 10 callee-saved, and paired `stp`/`ldp` saves — one instruction
/// covers two registers placed at the same location.
pub fn aarch64_aapcs64() -> TargetSpec {
    TargetSpec {
        name: "aarch64-aapcs64",
        description: "AArch64 AAPCS64: 10 callee-saved of 26, stp/ldp pairs two regs per insn",
        reg_note: "r0-r7=x0-x7 (args, r0=ret), r8-r15=x8-x15, r16-r25=x19-x28 callee-saved \
                   (x16-x18/fp/lr reserved)",
        caller_saved: (0..16).collect(),
        callee_saved: (16..26).collect(),
        ret_reg: 0,
        arg_regs: (0..8).collect(),
        stack_align: 16,
        slot_size: 8,
        costs: SpillCostModel {
            save: InsnCost::ONE,
            restore: InsnCost::ONE,
            entry_save: InsnCost::ONE,
            exit_restore: InsnCost::ONE,
            jump: InsnCost::ONE,
            pair_size: 2,
        },
    }
}

/// RISC-V LP64: 27 allocatable registers, 12 callee-saved (`s0-s11`),
/// uniform one-instruction saves like PA-RISC but a different split.
pub fn riscv64_lp64() -> TargetSpec {
    TargetSpec {
        name: "riscv64-lp64",
        description: "RISC-V LP64: 12 callee-saved of 27, uniform RISC costs",
        reg_note: "r0-r7=a0-a7 (args, r0=ret), r8-r14=t0-t6, r15-r26=s0-s11 callee-saved",
        caller_saved: (0..15).collect(),
        callee_saved: (15..27).collect(),
        ret_reg: 0,
        arg_regs: (0..8).collect(),
        stack_align: 16,
        slot_size: 8,
        costs: SpillCostModel::UNIT,
    }
}

/// The tiny test target: 2 caller- and 2 callee-saved registers, enough
/// to force callee-saved pressure in unit tests.
pub fn tiny() -> TargetSpec {
    TargetSpec {
        name: "tiny",
        description: "4-register test target forcing callee-saved pressure",
        reg_note: "r0=ret, r1=arg caller-saved; r2, r3 callee-saved",
        caller_saved: vec![0, 1],
        callee_saved: vec![2, 3],
        ret_reg: 0,
        arg_regs: vec![1],
        stack_align: 8,
        slot_size: 8,
        costs: SpillCostModel::UNIT,
    }
}

/// Every registered target, in stable registry order (the paper's
/// machine first).
///
/// The [`tiny`] test target is deliberately not registered: with a
/// single argument register it cannot lower the generated benchmark
/// modules, so it would break any fan-out over the registry. It remains
/// reachable by name through [`spec_by_name`] for hand-built inputs and
/// tests.
pub fn registry() -> Vec<TargetSpec> {
    vec![
        pa_risc_like(),
        x86_64_sysv(),
        aarch64_aapcs64(),
        riscv64_lp64(),
    ]
}

/// Looks a target up by name: the registry plus the unregistered
/// [`tiny`] test target.
pub fn spec_by_name(name: &str) -> Option<TargetSpec> {
    registry()
        .into_iter()
        .chain(std::iter::once(tiny()))
        .find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_core::COST_SCALE;

    #[test]
    fn every_registered_spec_is_valid() {
        let specs = registry();
        assert!(specs.len() >= 4);
        for spec in &specs {
            let target = spec
                .try_to_target()
                .unwrap_or_else(|e| panic!("registry spec `{}` invalid: {e}", spec.name));
            assert_eq!(target.name(), spec.name);
            assert_eq!(
                target.num_regs(),
                spec.caller_saved.len() + spec.callee_saved.len()
            );
            // Exact cost arithmetic: every sharing divisor must divide
            // COST_SCALE. Jump shares go up to the callee-saved count,
            // pair shares up to pair_size.
            for share in 1..=spec.callee_saved.len() as u64 {
                assert_eq!(COST_SCALE % share, 0, "{}: share {share}", spec.name);
            }
            assert!(spec.costs.pair_size >= 1);
            assert!(spec.stack_align.is_power_of_two());
            assert!(spec.max_spill_area() % spec.stack_align == 0);
        }
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let mut specs = registry();
        specs.push(tiny());
        for (i, s) in specs.iter().enumerate() {
            assert!(
                specs[i + 1..].iter().all(|o| o.name != s.name),
                "duplicate target name {}",
                s.name
            );
            assert_eq!(spec_by_name(s.name).as_ref(), Some(s));
        }
        assert!(spec_by_name("no-such-target").is_none());
        // Registered targets must all have enough argument registers for
        // the generated benchmarks (benchgen's BENCH_NUM_PARAMS = 2);
        // `tiny` has only one and stays out.
        assert!(registry().iter().all(|s| s.arg_regs.len() >= 2));
        assert!(registry().iter().all(|s| s.name != "tiny"));
    }

    #[test]
    fn conventions_match_their_machines() {
        let x86 = x86_64_sysv().to_target();
        assert_eq!(x86.callee_saved().len(), 6);
        assert_eq!(x86.arg_regs().len(), 6);
        let a64 = aarch64_aapcs64();
        assert_eq!(a64.to_target().callee_saved().len(), 10);
        assert_eq!(a64.costs.pair_size, 2);
        let rv = riscv64_lp64().to_target();
        assert_eq!(rv.callee_saved().len(), 12);
        // The paper's machine stays the default convention.
        assert_eq!(pa_risc_like().to_target(), spillopt_ir::Target::default());
        assert_eq!(tiny().to_target(), spillopt_ir::Target::tiny());
    }

    #[test]
    fn malformed_user_spec_surfaces_an_error() {
        let mut bad = x86_64_sysv();
        bad.callee_saved.push(0); // overlaps caller-saved r0
        assert!(matches!(
            bad.try_to_target(),
            Err(spillopt_ir::TargetError::Overlap(_))
        ));
    }
}
