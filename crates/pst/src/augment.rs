//! The augmented graph on which SESE regions are defined.
//!
//! Following Johnson, Pearson & Pingali (PLDI'94), the CFG is augmented
//! with a virtual END node fed by every return block, and a virtual
//! END -> entry edge that closes every entry-to-exit path into a cycle.
//! Cycle equivalence is computed on the *undirected* version of this
//! multigraph; dominance between edges is computed on a *split graph* in
//! which every augmented edge receives a mid-point node, so that edge
//! dominance/post-dominance reduce to plain node dominance of mid-points.

use spillopt_ir::analysis::dom::DomTree;
use spillopt_ir::{BlockId, Cfg, EdgeId, Graph};

/// Identity of an augmented edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AugEdgeRef {
    /// A real CFG edge.
    Cfg(EdgeId),
    /// The virtual edge from a return block to END.
    Ret(BlockId),
    /// The virtual END -> entry edge.
    Top,
}

/// One edge of the augmented graph.
#[derive(Clone, Copy, Debug)]
pub struct AugEdge {
    /// Source node (block index, or END).
    pub from: usize,
    /// Target node (block index, or END).
    pub to: usize,
    /// What the edge is.
    pub what: AugEdgeRef,
}

/// The augmented graph plus its split-graph dominator structures.
#[derive(Debug)]
pub struct AugGraph {
    /// Number of CFG blocks (END has index `num_blocks`).
    pub num_blocks: usize,
    /// All augmented edges; the `Top` edge is last.
    pub edges: Vec<AugEdge>,
    /// Dominator tree of the split graph, rooted at the entry block.
    pub doms: DomTree,
    /// Post-dominator tree of the split graph, rooted at END.
    pub pdoms: DomTree,
}

impl AugGraph {
    /// Builds the augmented graph of `cfg` and computes split-graph
    /// dominators and post-dominators.
    pub fn build(cfg: &Cfg) -> Self {
        let n = cfg.num_blocks();
        let end = n;
        let mut edges = Vec::with_capacity(cfg.num_edges() + cfg.exit_blocks().len() + 1);
        for (id, e) in cfg.edges() {
            edges.push(AugEdge {
                from: e.from.index(),
                to: e.to.index(),
                what: AugEdgeRef::Cfg(id),
            });
        }
        for &b in cfg.exit_blocks() {
            edges.push(AugEdge {
                from: b.index(),
                to: end,
                what: AugEdgeRef::Ret(b),
            });
        }
        edges.push(AugEdge {
            from: end,
            to: cfg.entry().index(),
            what: AugEdgeRef::Top,
        });

        // Split graph: nodes 0..=n are blocks + END; node n+1+i is the
        // mid-point of augmented edge i.
        let m = edges.len();
        let mut split = Graph::new(n + 1 + m);
        for (i, e) in edges.iter().enumerate() {
            let mid = n + 1 + i;
            split.add_edge(e.from, mid);
            split.add_edge(mid, e.to);
        }
        let doms = DomTree::compute(&split, cfg.entry().index());
        let pdoms = DomTree::compute_reversed(&split, end);

        AugGraph {
            num_blocks: n,
            edges,
            doms,
            pdoms,
        }
    }

    /// The retired construction (reversed-graph clone, reference
    /// dominator algorithm), kept verbatim for the perf-trajectory
    /// bench's frozen pipeline. Same structures as [`AugGraph::build`].
    pub fn build_reference(cfg: &Cfg) -> Self {
        let n = cfg.num_blocks();
        let end = n;
        let mut edges = Vec::with_capacity(cfg.num_edges() + cfg.exit_blocks().len() + 1);
        for (id, e) in cfg.edges() {
            edges.push(AugEdge {
                from: e.from.index(),
                to: e.to.index(),
                what: AugEdgeRef::Cfg(id),
            });
        }
        for &b in cfg.exit_blocks() {
            edges.push(AugEdge {
                from: b.index(),
                to: end,
                what: AugEdgeRef::Ret(b),
            });
        }
        edges.push(AugEdge {
            from: end,
            to: cfg.entry().index(),
            what: AugEdgeRef::Top,
        });

        // Split graph: nodes 0..=n are blocks + END; node n+1+i is the
        // mid-point of augmented edge i.
        let m = edges.len();
        let mut split = Graph::new(n + 1 + m);
        for (i, e) in edges.iter().enumerate() {
            let mid = n + 1 + i;
            split.add_edge(e.from, mid);
            split.add_edge(mid, e.to);
        }
        let doms = DomTree::compute_reference(&split, cfg.entry().index());
        let pdoms = DomTree::compute_reference(&split.reversed(), end);

        AugGraph {
            num_blocks: n,
            edges,
            doms,
            pdoms,
        }
    }

    /// Index of the END node.
    pub fn end_node(&self) -> usize {
        self.num_blocks
    }

    /// Split-graph node index of the mid-point of augmented edge `i`.
    pub fn mid(&self, i: usize) -> usize {
        self.num_blocks + 1 + i
    }

    /// Returns `true` if augmented edge `a` dominates augmented edge `b`
    /// (every path from procedure entry through `b` first crosses `a`).
    pub fn edge_dominates(&self, a: usize, b: usize) -> bool {
        self.doms.dominates(self.mid(a), self.mid(b))
    }

    /// Returns `true` if augmented edge `a` post-dominates augmented edge
    /// `b` (every path from `b` to procedure exit crosses `a`).
    pub fn edge_postdominates(&self, a: usize, b: usize) -> bool {
        self.pdoms.dominates(self.mid(a), self.mid(b))
    }

    /// Returns `true` if augmented edge `e` dominates block `b`.
    pub fn edge_dominates_block(&self, e: usize, b: usize) -> bool {
        self.doms.dominates(self.mid(e), b)
    }

    /// Returns `true` if augmented edge `e` post-dominates block `b`.
    pub fn edge_postdominates_block(&self, e: usize, b: usize) -> bool {
        self.pdoms.dominates(self.mid(e), b)
    }

    /// Dominator-tree depth of edge `e`'s mid-point (used to order a cycle
    /// equivalence class into its dominance chain).
    pub fn edge_depth(&self, e: usize) -> usize {
        self.doms.depth(self.mid(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{Cond, FunctionBuilder, Reg};

    /// A -> B -> {C,D} -> E -> ret, with the branch in B.
    fn sample() -> (spillopt_ir::Function, Vec<BlockId>) {
        let mut fb = FunctionBuilder::new("s", 0);
        let a = fb.create_block(Some("A"));
        let b = fb.create_block(Some("B"));
        let c = fb.create_block(Some("C"));
        let d = fb.create_block(Some("D"));
        let e = fb.create_block(Some("E"));
        fb.switch_to(a);
        fb.jump(b);
        fb.switch_to(b);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), d, c);
        fb.switch_to(c);
        fb.jump(e);
        fb.switch_to(d);
        fb.jump(e);
        fb.switch_to(e);
        fb.ret(None);
        (fb.finish(), vec![a, b, c, d, e])
    }

    #[test]
    fn builds_expected_edge_count() {
        let (f, _) = sample();
        let cfg = Cfg::compute(&f);
        let aug = AugGraph::build(&cfg);
        // 6 CFG edges + 1 return edge + top edge.
        assert_eq!(aug.edges.len(), cfg.num_edges() + 1 + 1);
        assert!(matches!(aug.edges.last().unwrap().what, AugEdgeRef::Top));
    }

    #[test]
    fn edge_dominance_matches_intuition() {
        let (f, blocks) = sample();
        let cfg = Cfg::compute(&f);
        let aug = AugGraph::build(&cfg);
        let (a, b, c, _d, e) = (blocks[0], blocks[1], blocks[2], blocks[3], blocks[4]);
        let find = |from: BlockId, to: BlockId| {
            let id = cfg.edge_between(from, to).unwrap();
            aug.edges
                .iter()
                .position(|x| x.what == AugEdgeRef::Cfg(id))
                .unwrap()
        };
        let ab = find(a, b);
        let bc = find(b, c);
        let ce = find(c, e);
        // A->B dominates everything downstream.
        assert!(aug.edge_dominates(ab, bc));
        assert!(aug.edge_dominates(ab, ce));
        assert!(!aug.edge_dominates(bc, ab));
        // C->E does not dominate B->C.
        assert!(!aug.edge_dominates(ce, bc));
        // B->C postdominates nothing upstream of the branch (D path
        // bypasses it)...
        assert!(!aug.edge_postdominates(bc, ab));
        // ...but C->E postdominates B->C.
        assert!(aug.edge_postdominates(ce, bc));
        // Edge-block relations.
        assert!(aug.edge_dominates_block(ab, b.index()));
        assert!(aug.edge_dominates_block(ab, e.index()));
        assert!(!aug.edge_dominates_block(bc, e.index()) || cfg.num_blocks() == 0);
        // Depth increases along the chain.
        assert!(aug.edge_depth(ab) < aug.edge_depth(bc));
    }

    #[test]
    fn return_edge_postdominates_all() {
        let (f, blocks) = sample();
        let cfg = Cfg::compute(&f);
        let aug = AugGraph::build(&cfg);
        let ret_edge = aug
            .edges
            .iter()
            .position(|x| matches!(x.what, AugEdgeRef::Ret(_)))
            .unwrap();
        for b in &blocks {
            assert!(aug.edge_postdominates_block(ret_edge, b.index()));
        }
    }
}
