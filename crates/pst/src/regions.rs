//! SESE region extraction from cycle-equivalence classes.
//!
//! A pair of augmented edges `(a, b)` is a *single-entry single-exit
//! region* iff `a` dominates `b`, `b` post-dominates `a`, and `a`, `b` are
//! cycle equivalent. Within one cycle-equivalence class the edges form a
//! dominance chain `e1, e2, ..., ek`; consecutive pairs are the *canonical*
//! (smallest) regions and `(e1, ek)` is the *maximal* region — the variant
//! this paper's algorithm uses (its Section 4 definition).

use crate::augment::{AugEdgeRef, AugGraph};
use crate::cycle_equiv::cycle_equivalence_classes;

/// A SESE region as a pair of augmented-edge indices.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SesePair {
    /// Entry edge (augmented-edge index).
    pub entry: usize,
    /// Exit edge (augmented-edge index).
    pub exit: usize,
}

/// The dominance chains of every cycle-equivalence class with ≥ 2 members.
#[derive(Clone, Debug)]
pub struct SeseChains {
    /// Each chain is a dominance-ordered list of augmented-edge indices
    /// (virtual top edge excluded).
    pub chains: Vec<Vec<usize>>,
}

impl SeseChains {
    /// Computes the chains of `aug`.
    ///
    /// The cycle-equivalence classes are ordered by dominance depth and
    /// split wherever the chain property (`a` dominates `b` and `b`
    /// post-dominates `a` for consecutive members) fails — with exact
    /// arithmetic this never happens on the augmented graph of a valid
    /// CFG, but splitting keeps the construction sound unconditionally.
    pub fn compute(aug: &AugGraph) -> Self {
        let undirected: Vec<(usize, usize)> = aug.edges.iter().map(|e| (e.from, e.to)).collect();
        let classes = cycle_equivalence_classes(aug.num_blocks + 1, &undirected);

        let num_classes = classes.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
        for (i, &c) in classes.iter().enumerate() {
            if matches!(aug.edges[i].what, AugEdgeRef::Top) {
                continue; // the virtual top edge is never a boundary
            }
            members[c as usize].push(i);
        }

        let mut chains = Vec::new();
        for mut m in members {
            if m.len() < 2 {
                continue;
            }
            m.sort_by_key(|&e| aug.edge_depth(e));
            // Split into maximal valid runs.
            let mut run: Vec<usize> = vec![m[0]];
            for &e in &m[1..] {
                let prev = *run.last().expect("non-empty run");
                if aug.edge_dominates(prev, e) && aug.edge_postdominates(e, prev) {
                    run.push(e);
                } else {
                    if run.len() >= 2 {
                        chains.push(std::mem::take(&mut run));
                    }
                    run = vec![e];
                }
            }
            if run.len() >= 2 {
                chains.push(run);
            }
        }
        SeseChains { chains }
    }

    /// All canonical (smallest) SESE regions: consecutive chain pairs.
    pub fn canonical_regions(&self) -> Vec<SesePair> {
        let mut out = Vec::new();
        for chain in &self.chains {
            for w in chain.windows(2) {
                out.push(SesePair {
                    entry: w[0],
                    exit: w[1],
                });
            }
        }
        out
    }

    /// All maximal SESE regions: first and last edge of each chain
    /// (the paper's Section 4 definition: the exit post-dominates every
    /// class member's exit and the entry dominates every member's entry).
    pub fn maximal_regions(&self) -> Vec<SesePair> {
        self.chains
            .iter()
            .map(|chain| SesePair {
                entry: *chain.first().expect("chains have ≥ 2 members"),
                exit: *chain.last().expect("chains have ≥ 2 members"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{Cfg, Cond, FunctionBuilder, Reg};

    /// entry -> A; A -> {B, C}; B -> D; C -> D; D -> exit(ret).
    /// The diamond {A.., D} region: entry edge entry->A ... Actually the
    /// chain entry->A, A-diamond-D, D->ret gives nested regions.
    fn diamond_func() -> spillopt_ir::Function {
        let mut fb = FunctionBuilder::new("d", 0);
        let entry = fb.create_block(Some("entry"));
        let a = fb.create_block(Some("A"));
        let b = fb.create_block(Some("B"));
        let c = fb.create_block(Some("C"));
        let d = fb.create_block(Some("D"));
        fb.switch_to(entry);
        fb.jump(a);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn diamond_produces_spine_chain() {
        let f = diamond_func();
        let cfg = Cfg::compute(&f);
        let aug = AugGraph::build(&cfg);
        let chains = SeseChains::compute(&aug);
        // The spine entry->A, (A..D is 2 parallel paths so not in spine),
        // D->END: one chain contains entry->A and D->END (cycle
        // equivalent through the top edge).
        let spine = chains
            .chains
            .iter()
            .find(|c| c.len() >= 2)
            .expect("at least one chain");
        // First edge of spine dominates last and is postdominated by it.
        let (first, last) = (spine[0], *spine.last().unwrap());
        assert!(aug.edge_dominates(first, last));
        assert!(aug.edge_postdominates(last, first));
        // Canonical count within a chain of length k is k-1.
        let canon = chains.canonical_regions();
        let maximal = chains.maximal_regions();
        assert!(canon.len() >= maximal.len());
        for m in &maximal {
            assert!(aug.edge_dominates(m.entry, m.exit));
            assert!(aug.edge_postdominates(m.exit, m.entry));
        }
    }

    #[test]
    fn straightline_chain_is_fully_equivalent() {
        // A -> B -> C -> ret: all edges plus the return edge form one
        // chain A->B, B->C, C->END.
        let mut fb = FunctionBuilder::new("s", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        fb.switch_to(a);
        fb.jump(b);
        fb.switch_to(b);
        fb.jump(c);
        fb.switch_to(c);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let aug = AugGraph::build(&cfg);
        let chains = SeseChains::compute(&aug);
        assert_eq!(chains.chains.len(), 1);
        assert_eq!(chains.chains[0].len(), 3); // A->B, B->C, C->END
        let maximal = chains.maximal_regions();
        assert_eq!(maximal.len(), 1);
        let canon = chains.canonical_regions();
        assert_eq!(canon.len(), 2);
    }
}
