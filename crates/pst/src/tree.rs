//! The Program Structure Tree over maximal SESE regions.

use crate::augment::{AugEdgeRef, AugGraph};
use crate::regions::SeseChains;
use spillopt_ir::{BlockId, Cfg, DenseBitSet, EdgeId};

/// Identifier of a PST region. The root region has id 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RegionId(u32);

impl RegionId {
    /// Creates a region id from a dense index.
    pub fn from_index(i: usize) -> Self {
        RegionId(u32::try_from(i).expect("region index overflow"))
    }

    /// Returns the dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// One boundary (entry or exit) of a PST region, in terms a placement pass
/// can realize physically.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegionBoundary {
    /// The procedure entry: realized at the top of the entry block.
    /// (Root region entry only.)
    ProcEntry,
    /// The procedure exits: realized at the bottom of every return block.
    /// (Root region exit only.)
    ProcExits,
    /// A real CFG edge.
    CfgEdge(EdgeId),
    /// The virtual edge from return block `b` to END: realized at the
    /// bottom of `b`, before its return.
    ReturnEdge(BlockId),
}

/// A node of the PST: a maximal SESE region (or the root = the whole
/// procedure).
#[derive(Clone, Debug)]
pub struct Region {
    /// This region's id.
    pub id: RegionId,
    /// Parent region (`None` for the root).
    pub parent: Option<RegionId>,
    /// Child regions, ordered deterministically.
    pub children: Vec<RegionId>,
    /// Entry boundary.
    pub entry: RegionBoundary,
    /// Exit boundary.
    pub exit: RegionBoundary,
    /// The blocks strictly between the boundaries (for the root: all
    /// blocks).
    pub blocks: DenseBitSet,
    /// Depth in the tree (root = 0).
    pub depth: usize,
}

/// The Program Structure Tree of a function: the root region (whole
/// procedure) plus every maximal SESE region, nested by containment.
///
/// Regions live in a flat arena numbered in **preorder**: the root is
/// `RegionId(0)` and every child's id is greater than its parent's.
/// Iterating ids in reverse ([`Pst::bottom_up`]) is therefore a
/// children-first traversal over contiguous memory, and dense per-region
/// side tables can be indexed by `RegionId` without hashing.
#[derive(Clone, Debug)]
pub struct Pst {
    regions: Vec<Region>,
    block_region: Vec<RegionId>,
    postorder: Vec<RegionId>,
}

impl Pst {
    /// Computes the PST of a CFG.
    ///
    /// The construction is linear-time in the spirit of Johnson et al.
    /// (cycle equivalence via spanning-tree XOR labelling) except for the
    /// containment bookkeeping, which is O(regions × blocks) — negligible
    /// at compiler scales and irrelevant to the paper's complexity claims
    /// about the placement algorithm itself.
    pub fn compute(cfg: &Cfg) -> Self {
        let aug = AugGraph::build(cfg);
        let chains = SeseChains::compute(&aug);
        let maximal = chains.maximal_regions();
        let n = cfg.num_blocks();

        let boundary_of = |edge_idx: usize| match aug.edges[edge_idx].what {
            AugEdgeRef::Cfg(e) => RegionBoundary::CfgEdge(e),
            AugEdgeRef::Ret(b) => RegionBoundary::ReturnEdge(b),
            AugEdgeRef::Top => unreachable!("top edge is never a boundary"),
        };

        // Root region.
        let mut all = DenseBitSet::new(n);
        for b in 0..n {
            all.insert(b);
        }
        let mut regions = vec![Region {
            id: RegionId(0),
            parent: None,
            children: Vec::new(),
            entry: RegionBoundary::ProcEntry,
            exit: RegionBoundary::ProcExits,
            blocks: all,
            depth: 0,
        }];

        for pair in &maximal {
            let mut blocks = DenseBitSet::new(n);
            for b in 0..n {
                if aug.edge_dominates_block(pair.entry, b)
                    && aug.edge_postdominates_block(pair.exit, b)
                {
                    blocks.insert(b);
                }
            }
            debug_assert!(!blocks.is_empty(), "maximal SESE region with no blocks");
            let id = RegionId(regions.len() as u32);
            regions.push(Region {
                id,
                parent: None,
                children: Vec::new(),
                entry: boundary_of(pair.entry),
                exit: boundary_of(pair.exit),
                blocks,
                depth: 0,
            });
        }

        // Parent = smallest strict superset.
        let mut order: Vec<usize> = (1..regions.len()).collect();
        order.sort_by_key(|&i| regions[i].blocks.count());
        for &i in &order {
            let mut best: usize = 0; // root
            let mut best_count = usize::MAX;
            for j in 0..regions.len() {
                if j == i {
                    continue;
                }
                let cj = regions[j].blocks.count();
                let ci = regions[i].blocks.count();
                if cj > ci && regions[i].blocks.is_subset(&regions[j].blocks) && cj < best_count {
                    best = j;
                    best_count = cj;
                }
            }
            regions[i].parent = Some(RegionId(best as u32));
        }
        for i in 1..regions.len() {
            let p = regions[i].parent.expect("non-root has parent").index();
            let id = regions[i].id;
            regions[p].children.push(id);
        }
        // Deterministic child order: by smallest contained block index.
        let keys: Vec<usize> = regions
            .iter()
            .map(|r| r.blocks.iter().next().unwrap_or(usize::MAX))
            .collect();
        for r in &mut regions {
            r.children.sort_by_key(|c| keys[c.index()]);
        }

        // Depths.
        let mut stack = vec![RegionId(0)];
        while let Some(r) = stack.pop() {
            let d = regions[r.index()].depth;
            let children = regions[r.index()].children.clone();
            for c in children {
                regions[c.index()].depth = d + 1;
                stack.push(c);
            }
        }

        // Innermost region per block: smallest containing region wins.
        let mut block_region = vec![RegionId(0); n];
        let mut assigned = vec![false; n];
        let mut by_size: Vec<usize> = (0..regions.len()).collect();
        by_size.sort_by_key(|&i| regions[i].blocks.count());
        for &i in &by_size {
            for b in regions[i].blocks.iter() {
                if !assigned[b] {
                    assigned[b] = true;
                    block_region[b] = RegionId(i as u32);
                }
            }
        }

        // Flatten the tree into a preorder arena: renumber regions so
        // that `RegionId(i)` *is* preorder position `i` (root = 0, every
        // child id greater than its parent's). Bottom-up passes then walk
        // the region array back to front — contiguous memory, no
        // hash-keyed bookkeeping — and dense per-region side tables can
        // be indexed by `RegionId` directly.
        let mut preorder = Vec::with_capacity(regions.len());
        {
            let mut stack: Vec<(RegionId, usize)> = vec![(RegionId(0), 0)];
            preorder.push(RegionId(0));
            while let Some(&mut (r, ref mut ci)) = stack.last_mut() {
                let children = &regions[r.index()].children;
                if *ci < children.len() {
                    let c = children[*ci];
                    *ci += 1;
                    preorder.push(c);
                    stack.push((c, 0));
                } else {
                    stack.pop();
                }
            }
        }
        let mut new_id = vec![0u32; regions.len()];
        for (new, old) in preorder.iter().enumerate() {
            new_id[old.index()] = new as u32;
        }
        let mut arena: Vec<Region> = Vec::with_capacity(regions.len());
        for &old in &preorder {
            let mut r = regions[old.index()].clone();
            r.id = RegionId(new_id[old.index()]);
            r.parent = r.parent.map(|p| RegionId(new_id[p.index()]));
            for c in &mut r.children {
                *c = RegionId(new_id[c.index()]);
            }
            arena.push(r);
        }
        let regions = arena;
        for br in &mut block_region {
            *br = RegionId(new_id[br.index()]);
        }

        // Postorder (children before parents).
        let mut postorder = Vec::with_capacity(regions.len());
        let mut stack: Vec<(RegionId, usize)> = vec![(RegionId(0), 0)];
        while let Some(&mut (r, ref mut ci)) = stack.last_mut() {
            let children = &regions[r.index()].children;
            if *ci < children.len() {
                let c = children[*ci];
                *ci += 1;
                stack.push((c, 0));
            } else {
                postorder.push(r);
                stack.pop();
            }
        }

        Pst {
            regions,
            block_region,
            postorder,
        }
    }

    /// The retired construction, kept verbatim for the perf-trajectory
    /// bench's frozen pipeline: reference dominator machinery, no
    /// preorder arena (regions keep discovery numbering). Semantically
    /// interchangeable with [`Pst::compute`] — every containment, LCA,
    /// and boundary query answers the same — but region *ids* differ, so
    /// only numbering-independent consumers (all placement passes) may
    /// mix the two.
    pub fn compute_reference(cfg: &Cfg) -> Self {
        let aug = AugGraph::build_reference(cfg);
        let chains = SeseChains::compute(&aug);
        let maximal = chains.maximal_regions();
        let n = cfg.num_blocks();

        let boundary_of = |edge_idx: usize| match aug.edges[edge_idx].what {
            AugEdgeRef::Cfg(e) => RegionBoundary::CfgEdge(e),
            AugEdgeRef::Ret(b) => RegionBoundary::ReturnEdge(b),
            AugEdgeRef::Top => unreachable!("top edge is never a boundary"),
        };

        // Root region.
        let mut all = DenseBitSet::new(n);
        for b in 0..n {
            all.insert(b);
        }
        let mut regions = vec![Region {
            id: RegionId(0),
            parent: None,
            children: Vec::new(),
            entry: RegionBoundary::ProcEntry,
            exit: RegionBoundary::ProcExits,
            blocks: all,
            depth: 0,
        }];

        for pair in &maximal {
            let mut blocks = DenseBitSet::new(n);
            for b in 0..n {
                if aug.edge_dominates_block(pair.entry, b)
                    && aug.edge_postdominates_block(pair.exit, b)
                {
                    blocks.insert(b);
                }
            }
            debug_assert!(!blocks.is_empty(), "maximal SESE region with no blocks");
            let id = RegionId(regions.len() as u32);
            regions.push(Region {
                id,
                parent: None,
                children: Vec::new(),
                entry: boundary_of(pair.entry),
                exit: boundary_of(pair.exit),
                blocks,
                depth: 0,
            });
        }

        // Parent = smallest strict superset.
        let mut order: Vec<usize> = (1..regions.len()).collect();
        order.sort_by_key(|&i| regions[i].blocks.count());
        for &i in &order {
            let mut best: usize = 0; // root
            let mut best_count = usize::MAX;
            for j in 0..regions.len() {
                if j == i {
                    continue;
                }
                let cj = regions[j].blocks.count();
                let ci = regions[i].blocks.count();
                if cj > ci && regions[i].blocks.is_subset(&regions[j].blocks) && cj < best_count {
                    best = j;
                    best_count = cj;
                }
            }
            regions[i].parent = Some(RegionId(best as u32));
        }
        for i in 1..regions.len() {
            let p = regions[i].parent.expect("non-root has parent").index();
            let id = regions[i].id;
            regions[p].children.push(id);
        }
        // Deterministic child order: by smallest contained block index.
        let keys: Vec<usize> = regions
            .iter()
            .map(|r| r.blocks.iter().next().unwrap_or(usize::MAX))
            .collect();
        for r in &mut regions {
            r.children.sort_by_key(|c| keys[c.index()]);
        }

        // Depths.
        let mut stack = vec![RegionId(0)];
        while let Some(r) = stack.pop() {
            let d = regions[r.index()].depth;
            let children = regions[r.index()].children.clone();
            for c in children {
                regions[c.index()].depth = d + 1;
                stack.push(c);
            }
        }

        // Innermost region per block: smallest containing region wins.
        let mut block_region = vec![RegionId(0); n];
        let mut assigned = vec![false; n];
        let mut by_size: Vec<usize> = (0..regions.len()).collect();
        by_size.sort_by_key(|&i| regions[i].blocks.count());
        for &i in &by_size {
            for b in regions[i].blocks.iter() {
                if !assigned[b] {
                    assigned[b] = true;
                    block_region[b] = RegionId(i as u32);
                }
            }
        }

        // Postorder (children before parents).
        let mut postorder = Vec::with_capacity(regions.len());
        let mut stack: Vec<(RegionId, usize)> = vec![(RegionId(0), 0)];
        while let Some(&mut (r, ref mut ci)) = stack.last_mut() {
            let children = &regions[r.index()].children;
            if *ci < children.len() {
                let c = children[*ci];
                *ci += 1;
                stack.push((c, 0));
            } else {
                postorder.push(r);
                stack.pop();
            }
        }

        Pst {
            regions,
            block_region,
            postorder,
        }
    }

    /// The root region (the whole procedure).
    pub fn root(&self) -> RegionId {
        RegionId(0)
    }

    /// Returns a region by id.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// Number of regions (including the root).
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Iterates over all regions.
    pub fn regions(&self) -> impl Iterator<Item = &Region> + '_ {
        self.regions.iter()
    }

    /// Regions in postorder: every region appears after all its children.
    /// This is the paper's "topological-order traversal of the PST".
    pub fn postorder(&self) -> &[RegionId] {
        &self.postorder
    }

    /// Region ids in reverse preorder — also children-first (the arena is
    /// preorder-numbered, so every child id is greater than its
    /// parent's). Bottom-up passes use this to walk the region array back
    /// to front and index dense side tables by `RegionId` directly,
    /// instead of chasing the postorder indirection.
    pub fn bottom_up(&self) -> impl DoubleEndedIterator<Item = RegionId> {
        (0..self.regions.len()).rev().map(RegionId::from_index)
    }

    /// The innermost region containing block `b`.
    pub fn innermost_region_of_block(&self, b: BlockId) -> RegionId {
        self.block_region[b.index()]
    }

    /// Returns `true` if region `r` contains block `b`.
    pub fn contains_block(&self, r: RegionId, b: BlockId) -> bool {
        self.regions[r.index()].blocks.contains(b.index())
    }

    /// Lowest common ancestor of two regions.
    pub fn lca(&self, a: RegionId, b: RegionId) -> RegionId {
        let (mut x, mut y) = (a, b);
        while self.regions[x.index()].depth > self.regions[y.index()].depth {
            x = self.regions[x.index()]
                .parent
                .expect("depth > 0 has parent");
        }
        while self.regions[y.index()].depth > self.regions[x.index()].depth {
            y = self.regions[y.index()]
                .parent
                .expect("depth > 0 has parent");
        }
        while x != y {
            x = self.regions[x.index()].parent.expect("non-root");
            y = self.regions[y.index()].parent.expect("non-root");
        }
        x
    }

    /// The innermost region containing both endpoints of a CFG edge — the
    /// region a save/restore location *on* that edge belongs to. For a
    /// region's own entry/exit edge this is the region's parent (or an
    /// ancestor), matching the paper's bookkeeping where a set created at
    /// region boundaries is seen by the enclosing regions.
    pub fn innermost_region_of_edge(&self, cfg: &Cfg, e: EdgeId) -> RegionId {
        let edge = cfg.edge(e);
        self.lca(
            self.innermost_region_of_block(edge.from),
            self.innermost_region_of_block(edge.to),
        )
    }

    /// Enumerates the ancestor path of `r`: `r` itself, then each parent
    /// in turn, ending at the root. Over the preorder arena the yielded
    /// ids are strictly decreasing, so the path doubles as a worklist in
    /// fold order.
    pub fn ancestors(&self, r: RegionId) -> impl Iterator<Item = RegionId> + '_ {
        std::iter::successors(Some(r), move |&x| self.regions[x.index()].parent)
    }

    /// Maps a profile delta onto the regions whose folded placement
    /// products it can invalidate, closed under the ancestor relation
    /// (every dirty region's whole path to the root is dirty, so a
    /// bottom-up refold of exactly the returned set re-establishes the
    /// cold fixpoint).
    ///
    /// A changed edge `e` dirties three kinds of region:
    /// - the innermost region containing `e` (it prices `OnEdge(e)`
    ///   points of sets homed at or folded through it),
    /// - the innermost region of `e`'s target block (the block's derived
    ///   execution count changed, so `BlockTop`/`BlockBottom` points
    ///   there reprice),
    /// - any region whose *own* entry or exit boundary is `e` (its
    ///   boundary hoist cost repriced; the innermost region of a
    ///   boundary edge is the region's parent, so the first rule alone
    ///   would miss the region itself).
    ///
    /// A changed entry count dirties the root (the `ProcEntry` boundary
    /// is priced by it) and the entry block's innermost region. Regions
    /// exiting through a `ReturnEdge` of a repriced block are reached by
    /// the ancestor closure (the return block lies inside them), but are
    /// seeded explicitly as well for robustness.
    ///
    /// Returns a dense `true`-per-dirty-region vector indexed by
    /// [`RegionId`].
    pub fn dirty_regions(
        &self,
        cfg: &Cfg,
        changed_edges: &[EdgeId],
        entry_changed: bool,
    ) -> Vec<bool> {
        let mut dirty = vec![false; self.regions.len()];
        let seed = |dirty: &mut Vec<bool>, r: RegionId| {
            for a in self.ancestors(r) {
                if std::mem::replace(&mut dirty[a.index()], true) {
                    break;
                }
            }
        };

        let dirty_block = |dirty: &mut Vec<bool>, b: BlockId| {
            seed(dirty, self.innermost_region_of_block(b));
            for r in &self.regions {
                let hit = |bound: RegionBoundary| bound == RegionBoundary::ReturnEdge(b);
                if hit(r.entry) || hit(r.exit) {
                    seed(dirty, r.id);
                }
            }
        };

        for &e in changed_edges {
            seed(&mut dirty, self.innermost_region_of_edge(cfg, e));
            dirty_block(&mut dirty, cfg.edge(e).to);
            for r in &self.regions {
                let hit = |bound: RegionBoundary| bound == RegionBoundary::CfgEdge(e);
                if hit(r.entry) || hit(r.exit) {
                    seed(&mut dirty, r.id);
                }
            }
        }
        if entry_changed {
            seed(&mut dirty, self.root());
            dirty_block(&mut dirty, cfg.entry());
        }
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{Cond, FunctionBuilder, Reg};

    /// Nested diamonds: outer branch at A joining at F; inner diamond
    /// B -> {C,D} -> E inside the left arm.
    fn nested() -> (spillopt_ir::Function, Vec<BlockId>) {
        let mut fb = FunctionBuilder::new("nested", 0);
        let a = fb.create_block(Some("A"));
        let b = fb.create_block(Some("B"));
        let c = fb.create_block(Some("C"));
        let d = fb.create_block(Some("D"));
        let e = fb.create_block(Some("E"));
        let g = fb.create_block(Some("G")); // right arm
        let f_ = fb.create_block(Some("F"));
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), g, b);
        fb.switch_to(b);
        fb.branch(Cond::Gt, Reg::Virt(x), Reg::Virt(x), d, c);
        fb.switch_to(c);
        fb.jump(e);
        fb.switch_to(d);
        fb.jump(e);
        fb.switch_to(e);
        fb.jump(f_);
        fb.switch_to(g);
        fb.jump(f_);
        fb.switch_to(f_);
        fb.ret(None);
        (fb.finish(), vec![a, b, c, d, e, g, f_])
    }

    #[test]
    fn root_covers_everything() {
        let (f, blocks) = nested();
        let cfg = Cfg::compute(&f);
        let pst = Pst::compute(&cfg);
        for &b in &blocks {
            assert!(pst.contains_block(pst.root(), b));
        }
        assert_eq!(pst.region(pst.root()).depth, 0);
        assert!(pst.region(pst.root()).parent.is_none());
    }

    #[test]
    fn finds_nested_left_arm_region() {
        let (f, blocks) = nested();
        let cfg = Cfg::compute(&f);
        let pst = Pst::compute(&cfg);
        let (b, c, d, e) = (blocks[1], blocks[2], blocks[3], blocks[4]);
        // Some region should contain exactly the left arm {B,C,D,E}.
        let left_arm = pst.regions().find(|r| {
            r.blocks.contains(b.index())
                && r.blocks.contains(e.index())
                && !r.blocks.contains(blocks[5].index())
                && !r.blocks.contains(blocks[0].index())
                && !r.blocks.contains(blocks[6].index())
        });
        let left_arm = left_arm.expect("left-arm region missing");
        assert!(left_arm.blocks.contains(c.index()));
        assert!(left_arm.blocks.contains(d.index()));
        assert_eq!(left_arm.blocks.count(), 4);
        // Its parent chain reaches the root.
        let mut r = left_arm.id;
        let mut hops = 0;
        while let Some(p) = pst.region(r).parent {
            r = p;
            hops += 1;
            assert!(hops < 100);
        }
        assert_eq!(r, pst.root());
    }

    #[test]
    fn postorder_visits_children_first() {
        let (f, _) = nested();
        let cfg = Cfg::compute(&f);
        let pst = Pst::compute(&cfg);
        let pos: std::collections::HashMap<RegionId, usize> = pst
            .postorder()
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i))
            .collect();
        for r in pst.regions() {
            for &c in &r.children {
                assert!(pos[&c] < pos[&r.id], "{c} must precede {}", r.id);
            }
        }
        assert_eq!(*pst.postorder().last().unwrap(), pst.root());
        assert_eq!(pst.postorder().len(), pst.num_regions());
    }

    #[test]
    fn innermost_block_and_edge_queries() {
        let (f, blocks) = nested();
        let cfg = Cfg::compute(&f);
        let pst = Pst::compute(&cfg);
        let c = blocks[2];
        let inner = pst.innermost_region_of_block(c);
        assert!(pst.contains_block(inner, c));
        // Edge A->B crosses into the left-arm region: its innermost region
        // must contain both A and B.
        let e = cfg.edge_between(blocks[0], blocks[1]).unwrap();
        let r = pst.innermost_region_of_edge(&cfg, e);
        assert!(pst.contains_block(r, blocks[0]));
        assert!(pst.contains_block(r, blocks[1]));
    }

    #[test]
    fn arena_is_preorder_numbered() {
        let (f, _) = nested();
        let cfg = Cfg::compute(&f);
        let pst = Pst::compute(&cfg);
        assert_eq!(pst.root(), RegionId::from_index(0));
        for r in pst.regions() {
            for &c in &r.children {
                assert!(c > r.id, "child {c} must be numbered after parent {}", r.id);
            }
            if let Some(p) = r.parent {
                assert!(p < r.id);
            }
        }
        // bottom_up is children-first and covers every region.
        let order: Vec<RegionId> = pst.bottom_up().collect();
        assert_eq!(order.len(), pst.num_regions());
        let pos: std::collections::HashMap<RegionId, usize> =
            order.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        for r in pst.regions() {
            for &c in &r.children {
                assert!(pos[&c] < pos[&r.id]);
            }
        }
    }

    #[test]
    fn ancestors_walk_to_the_root_in_decreasing_id_order() {
        let (f, _) = nested();
        let cfg = Cfg::compute(&f);
        let pst = Pst::compute(&cfg);
        for r in pst.regions() {
            let path: Vec<RegionId> = pst.ancestors(r.id).collect();
            assert_eq!(path.first(), Some(&r.id));
            assert_eq!(path.last(), Some(&pst.root()));
            assert!(path.windows(2).all(|w| w[1] < w[0]));
            assert_eq!(path.len(), r.depth + 1);
        }
    }

    #[test]
    fn dirty_regions_are_ancestor_closed_and_scoped() {
        let (f, blocks) = nested();
        let cfg = Cfg::compute(&f);
        let pst = Pst::compute(&cfg);

        // Empty delta dirties nothing.
        assert!(pst.dirty_regions(&cfg, &[], false).iter().all(|&d| !d));

        // A single inner-diamond edge (C -> E) must not dirty the
        // sibling arm region containing G, but must dirty its own
        // innermost region plus the whole root path.
        let ce = cfg.edge_between(blocks[2], blocks[4]).unwrap();
        let dirty = pst.dirty_regions(&cfg, &[ce], false);
        assert!(dirty[pst.root().index()]);
        let inner = pst.innermost_region_of_edge(&cfg, ce);
        assert!(dirty[inner.index()]);
        for (i, &d) in dirty.iter().enumerate() {
            let r = pst.region(RegionId::from_index(i));
            if d {
                if let Some(p) = r.parent {
                    assert!(dirty[p.index()], "dirty set not ancestor-closed");
                }
            }
        }
        let g_region = pst.innermost_region_of_block(blocks[5]);
        if g_region != pst.root() && !pst.contains_block(g_region, blocks[2]) {
            assert!(!dirty[g_region.index()], "sibling arm wrongly dirtied");
        }

        // An entry-count change dirties the root and the entry block's
        // innermost region.
        let dirty = pst.dirty_regions(&cfg, &[], true);
        assert!(dirty[pst.root().index()]);
        assert!(dirty[pst.innermost_region_of_block(cfg.entry()).index()]);
    }

    #[test]
    fn dirty_regions_seed_boundary_owners() {
        let (f, _) = nested();
        let cfg = Cfg::compute(&f);
        let pst = Pst::compute(&cfg);
        // For every region bounded by a real CFG edge, changing that edge
        // must dirty the region itself (not only its parent).
        for r in pst.regions() {
            for bound in [r.entry, r.exit] {
                if let RegionBoundary::CfgEdge(e) = bound {
                    let dirty = pst.dirty_regions(&cfg, &[e], false);
                    assert!(dirty[r.id.index()], "{} not dirtied by its boundary", r.id);
                }
            }
        }
    }

    #[test]
    fn proper_nesting_no_partial_overlap() {
        let (f, _) = nested();
        let cfg = Cfg::compute(&f);
        let pst = Pst::compute(&cfg);
        let regions: Vec<_> = pst.regions().collect();
        for i in 0..regions.len() {
            for j in i + 1..regions.len() {
                let (a, b) = (&regions[i].blocks, &regions[j].blocks);
                let nested = a.is_subset(b) || b.is_subset(a);
                let disjoint = a.is_disjoint(b);
                assert!(nested || disjoint, "regions {i} and {j} partially overlap");
            }
        }
    }
}
