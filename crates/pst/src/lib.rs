//! # spillopt-pst
//!
//! Program Structure Tree (PST) substrate for the *spillopt* reproduction
//! of Lupo & Wilken (CGO 2006).
//!
//! The paper's hierarchical spill-code placement algorithm traverses the
//! PST of a procedure: the tree of **maximal single-entry single-exit
//! (SESE) regions** defined by Johnson, Pearson & Pingali (PLDI'94) over
//! the cycle-equivalence classes of an augmented CFG. Region boundaries
//! are exactly the program points "where dynamic execution count may
//! change", which is why they suffice for a minimum-cost save/restore
//! placement.
//!
//! * [`cycle_equiv`] — linear-time cycle equivalence via spanning-tree XOR
//!   labelling of the cycle space (plus an exact oracle for tests);
//! * [`augment`] — the virtual-END augmented graph and the mid-edge split
//!   graph on which edge dominance is plain node dominance;
//! * [`regions`] — dominance chains, canonical and **maximal** regions
//!   (the paper uses maximal; canonical are kept for the ablation);
//! * [`tree`] — the [`Pst`] itself with containment and traversal
//!   queries; [`verify`] — invariant checking for tests.
//!
//! # Examples
//!
//! ```
//! use spillopt_ir::{Cfg, Cond, FunctionBuilder, Reg};
//! use spillopt_pst::Pst;
//!
//! // A diamond: entry -> {left, right} -> join -> ret.
//! let mut fb = FunctionBuilder::new("f", 0);
//! let entry = fb.create_block(None);
//! let left = fb.create_block(None);
//! let right = fb.create_block(None);
//! let join = fb.create_block(None);
//! fb.switch_to(entry);
//! let x = fb.li(1);
//! fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), right, left);
//! fb.switch_to(left);
//! fb.jump(join);
//! fb.switch_to(right);
//! fb.jump(join);
//! fb.switch_to(join);
//! fb.ret(None);
//! let func = fb.finish();
//!
//! let cfg = Cfg::compute(&func);
//! let pst = Pst::compute(&cfg);
//! assert!(pst.num_regions() >= 1);
//! // The traversal the paper calls "topological order":
//! assert_eq!(*pst.postorder().last().unwrap(), pst.root());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod augment;
pub mod cycle_equiv;
pub mod regions;
pub mod tree;
pub mod verify;

pub use augment::{AugEdge, AugEdgeRef, AugGraph};
pub use cycle_equiv::{cycle_equivalence_classes, cycle_equivalence_classes_oracle, edge_labels};
pub use regions::{SeseChains, SesePair};
pub use tree::{Pst, Region, RegionBoundary, RegionId};
pub use verify::verify_pst;
