//! Structural verification of a computed PST (used heavily by tests and
//! property tests).

use crate::augment::{AugEdgeRef, AugGraph};
use crate::tree::{Pst, Region, RegionBoundary};
use spillopt_ir::Cfg;

/// Checks PST invariants against its CFG. Returns human-readable
/// violation descriptions (empty = valid).
///
/// Checked invariants:
///
/// 1. the root covers all blocks and every non-root region's block set is
///    a strict subset of its parent's;
/// 2. any two regions are nested or disjoint (proper hierarchy);
/// 3. every non-root region's boundaries satisfy the SESE conditions:
///    entry dominates exit, exit post-dominates entry;
/// 4. every block's innermost region contains it and no smaller region
///    does;
/// 5. postorder lists children before parents and covers every region
///    exactly once.
pub fn verify_pst(cfg: &Cfg, pst: &Pst) -> Vec<String> {
    let mut errs = Vec::new();
    let aug = AugGraph::build(cfg);

    let aug_index = |b: RegionBoundary| -> Option<usize> {
        match b {
            RegionBoundary::CfgEdge(e) => {
                aug.edges.iter().position(|x| x.what == AugEdgeRef::Cfg(e))
            }
            RegionBoundary::ReturnEdge(blk) => aug
                .edges
                .iter()
                .position(|x| x.what == AugEdgeRef::Ret(blk)),
            _ => None,
        }
    };

    // 1 & 3.
    let root = pst.region(pst.root());
    if root.blocks.count() != cfg.num_blocks() {
        errs.push("root region does not cover all blocks".to_string());
    }
    for r in pst.regions() {
        if r.id == pst.root() {
            continue;
        }
        let parent = match r.parent {
            Some(p) => pst.region(p),
            None => {
                errs.push(format!("{} has no parent", r.id));
                continue;
            }
        };
        if !r.blocks.is_subset(&parent.blocks) || r.blocks.count() >= parent.blocks.count() {
            errs.push(format!("{} is not a strict subset of its parent", r.id));
        }
        match (aug_index(r.entry), aug_index(r.exit)) {
            (Some(en), Some(ex)) => {
                if !aug.edge_dominates(en, ex) {
                    errs.push(format!("{}: entry does not dominate exit", r.id));
                }
                if !aug.edge_postdominates(ex, en) {
                    errs.push(format!("{}: exit does not post-dominate entry", r.id));
                }
            }
            _ => errs.push(format!("{}: non-root region with virtual boundary", r.id)),
        }
        if r.blocks.is_empty() {
            errs.push(format!("{} is empty", r.id));
        }
    }

    // 2.
    let regions: Vec<&Region> = pst.regions().collect();
    for i in 0..regions.len() {
        for j in i + 1..regions.len() {
            let (a, b) = (&regions[i].blocks, &regions[j].blocks);
            if !(a.is_subset(b) || b.is_subset(a) || a.is_disjoint(b)) {
                errs.push(format!(
                    "{} and {} partially overlap",
                    regions[i].id, regions[j].id
                ));
            }
        }
    }

    // 4.
    for bi in 0..cfg.num_blocks() {
        let b = spillopt_ir::BlockId::from_index(bi);
        let inner = pst.innermost_region_of_block(b);
        if !pst.contains_block(inner, b) {
            errs.push(format!("innermost region of {b} does not contain it"));
        }
        for r in pst.regions() {
            if r.blocks.contains(bi) && r.blocks.count() < pst.region(inner).blocks.count() {
                errs.push(format!("{} is smaller than innermost region of {b}", r.id));
            }
        }
    }

    // 5.
    let post = pst.postorder();
    if post.len() != pst.num_regions() {
        errs.push("postorder length mismatch".to_string());
    }
    let pos: std::collections::HashMap<_, _> =
        post.iter().enumerate().map(|(i, &r)| (r, i)).collect();
    for r in pst.regions() {
        for &c in &r.children {
            if pos[&c] >= pos[&r.id] {
                errs.push(format!("postorder: {c} not before parent {}", r.id));
            }
        }
    }

    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use spillopt_ir::{Cond, FunctionBuilder, Reg};

    #[test]
    fn valid_pst_passes() {
        let mut fb = FunctionBuilder::new("v", 0);
        let a = fb.create_block(None);
        let b = fb.create_block(None);
        let c = fb.create_block(None);
        let d = fb.create_block(None);
        fb.switch_to(a);
        let x = fb.li(0);
        fb.branch(Cond::Lt, Reg::Virt(x), Reg::Virt(x), c, b);
        fb.switch_to(b);
        fb.jump(d);
        fb.switch_to(c);
        fb.jump(d);
        fb.switch_to(d);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let pst = Pst::compute(&cfg);
        let errs = verify_pst(&cfg, &pst);
        assert!(errs.is_empty(), "{errs:?}");
    }
}
