//! Cycle equivalence of augmented-graph edges.
//!
//! Two edges are *cycle equivalent* iff every cycle of the (undirected)
//! augmented graph contains either both or neither. Johnson-Pearson-
//! Pingali compute this with bracket lists; we use an equivalent — and much
//! simpler — linear-time formulation over the cycle space:
//!
//! * pick any undirected spanning tree;
//! * give every non-tree edge an independent random 128-bit label;
//! * label every tree edge with the XOR of the labels of the non-tree
//!   edges whose fundamental cycle covers it.
//!
//! An edge's label is then a hash of the *set of fundamental cycles it
//! belongs to*, and since every cycle is a symmetric difference of
//! fundamental cycles, two edges are cycle equivalent iff these sets are
//! equal — i.e. iff their labels collide. With 128-bit labels drawn from a
//! seeded generator the collision probability is ~k²·2⁻¹²⁸ (astronomically
//! small and deterministic per build); tests cross-check against an exact
//! fundamental-cycle-matrix oracle.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Computes cycle-equivalence classes of an undirected multigraph.
///
/// `edges` are `(u, v)` endpoint pairs over nodes `0..num_nodes`
/// (self-loops and parallel edges allowed). Returns a class id per edge;
/// equal ids mean cycle equivalent.
///
/// Edges on no cycle at all (bridges) all receive the all-zero label and
/// therefore share a class; in the augmented CFG every edge lies on a cycle
/// (the virtual top edge guarantees it), so this case does not arise there.
///
/// # Panics
///
/// Panics if the graph is disconnected (a CFG whose blocks all reach the
/// exit is always connected once augmented).
pub fn cycle_equivalence_classes(num_nodes: usize, edges: &[(usize, usize)]) -> Vec<u32> {
    let labels = edge_labels(num_nodes, edges);
    // Group by label.
    let mut class_of_label: std::collections::HashMap<u128, u32> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(edges.len());
    for &l in &labels {
        let next = class_of_label.len() as u32;
        out.push(*class_of_label.entry(l).or_insert(next));
    }
    out
}

/// Computes the 128-bit cycle-space label of every edge (see module docs).
pub fn edge_labels(num_nodes: usize, edges: &[(usize, usize)]) -> Vec<u128> {
    if num_nodes == 0 {
        assert!(edges.is_empty());
        return Vec::new();
    }
    // Undirected adjacency with edge ids.
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); num_nodes];
    for (i, &(u, v)) in edges.iter().enumerate() {
        adj[u].push((v, i));
        adj[v].push((u, i));
    }

    // Iterative undirected DFS building a spanning tree.
    let mut parent_edge: Vec<Option<usize>> = vec![None; num_nodes]; // tree edge to parent
    let mut parent: Vec<usize> = vec![usize::MAX; num_nodes];
    let mut visited = vec![false; num_nodes];
    let mut edge_used = vec![false; edges.len()]; // traversed as tree edge
    let mut is_tree = vec![false; edges.len()];
    let mut order = Vec::with_capacity(num_nodes); // DFS preorder

    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    visited[0] = true;
    order.push(0);
    while let Some(&mut (u, ref mut ci)) = stack.last_mut() {
        if *ci < adj[u].len() {
            let (v, e) = adj[u][*ci];
            *ci += 1;
            if !visited[v] && !edge_used[e] {
                visited[v] = true;
                edge_used[e] = true;
                is_tree[e] = true;
                parent[v] = u;
                parent_edge[v] = Some(e);
                order.push(v);
                stack.push((v, 0));
            }
        } else {
            stack.pop();
        }
    }
    assert!(
        visited.iter().all(|&v| v),
        "cycle equivalence requires a connected graph"
    );

    // Random labels for non-tree edges; XOR-accumulate onto endpoints.
    let mut rng = SmallRng::seed_from_u64(0x005e_5ec7_c1e9_u64);
    let mut labels = vec![0u128; edges.len()];
    let mut acc = vec![0u128; num_nodes];
    for (i, &(u, v)) in edges.iter().enumerate() {
        if !is_tree[i] {
            let r = ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128;
            labels[i] = r;
            acc[u] ^= r;
            acc[v] ^= r; // self-loops cancel: covers no tree edge
        }
    }

    // Subtree XOR in reverse preorder gives each tree edge's label.
    for &v in order.iter().rev() {
        if let Some(e) = parent_edge[v] {
            labels[e] = acc[v];
            let p = parent[v];
            acc[p] ^= acc[v];
        }
    }
    labels
}

/// Exact (exponential-free but O(V·E²)) oracle: builds the explicit
/// fundamental-cycle membership matrix and compares columns. Intended for
/// tests on small graphs.
pub fn cycle_equivalence_classes_oracle(num_nodes: usize, edges: &[(usize, usize)]) -> Vec<u32> {
    // Spanning tree via BFS.
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); num_nodes];
    for (i, &(u, v)) in edges.iter().enumerate() {
        adj[u].push((v, i));
        adj[v].push((u, i));
    }
    let mut parent: Vec<usize> = vec![usize::MAX; num_nodes];
    let mut parent_edge: Vec<Option<usize>> = vec![None; num_nodes];
    let mut visited = vec![false; num_nodes];
    let mut is_tree = vec![false; edges.len()];
    let mut queue = std::collections::VecDeque::from([0usize]);
    visited[0] = true;
    while let Some(u) = queue.pop_front() {
        for &(v, e) in &adj[u] {
            if !visited[v] {
                visited[v] = true;
                is_tree[e] = true;
                parent[v] = u;
                parent_edge[v] = Some(e);
                queue.push_back(v);
            }
        }
    }
    assert!(visited.iter().all(|&v| v), "disconnected graph");

    let tree_path_to_root = |mut x: usize| -> Vec<usize> {
        let mut p = Vec::new();
        while let Some(e) = parent_edge[x] {
            p.push(e);
            x = parent[x];
        }
        p
    };

    // Membership rows: for each edge, the set of fundamental cycles (one
    // per non-tree edge) containing it.
    let non_tree: Vec<usize> = (0..edges.len()).filter(|&e| !is_tree[e]).collect();
    let mut rows: Vec<Vec<bool>> = vec![vec![false; non_tree.len()]; edges.len()];
    for (ci, &nt) in non_tree.iter().enumerate() {
        let (u, v) = edges[nt];
        rows[nt][ci] = true;
        if u == v {
            continue; // self-loop: covers no tree edge
        }
        // Fundamental cycle = nt plus the symmetric difference of the two
        // root paths.
        let pu = tree_path_to_root(u);
        let pv = tree_path_to_root(v);
        let mut count: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for e in pu.iter().chain(pv.iter()) {
            *count.entry(*e).or_insert(0) += 1;
        }
        for (e, c) in count {
            if c == 1 {
                rows[e][ci] = true;
            }
        }
    }

    let mut class_of_row: std::collections::HashMap<Vec<bool>, u32> =
        std::collections::HashMap::new();
    rows.into_iter()
        .map(|r| {
            let next = class_of_row.len() as u32;
            *class_of_row.entry(r).or_insert(next)
        })
        .collect()
}

/// Checks that two class assignments induce the same partition.
pub fn same_partition(a: &[u32], b: &[u32]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut map_ab = std::collections::HashMap::new();
    let mut map_ba = std::collections::HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        if *map_ab.entry(x).or_insert(y) != y {
            return false;
        }
        if *map_ba.entry(y).or_insert(x) != x {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_cycle_is_one_class() {
        // Triangle 0-1-2-0: every edge in every cycle.
        let edges = [(0, 1), (1, 2), (2, 0)];
        let c = cycle_equivalence_classes(3, &edges);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[1], c[2]);
    }

    #[test]
    fn theta_graph_classes() {
        // Nodes 0,1 with three parallel paths: 0-1 direct, 0-2-1, 0-3-1.
        // Each path's edges... direct edge is its own class; each two-edge
        // path's edges are pairwise equivalent.
        let edges = [(0, 1), (0, 2), (2, 1), (0, 3), (3, 1)];
        let c = cycle_equivalence_classes(4, &edges);
        assert_eq!(c[1], c[2]); // path via 2
        assert_eq!(c[3], c[4]); // path via 3
        assert_ne!(c[0], c[1]);
        assert_ne!(c[0], c[3]);
        assert_ne!(c[1], c[3]);
    }

    #[test]
    fn series_edges_are_equivalent() {
        // Cycle with a chain: 0-1-2-3-0. All four edges equivalent.
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0)];
        let c = cycle_equivalence_classes(4, &edges);
        assert!(c.iter().all(|&x| x == c[0]));
    }

    #[test]
    fn self_loop_is_isolated_class() {
        let edges = [(0, 1), (1, 0), (1, 1)];
        let c = cycle_equivalence_classes(2, &edges);
        assert_eq!(c[0], c[1]); // the 2-cycle
        assert_ne!(c[2], c[0]); // the self-loop
    }

    #[test]
    fn matches_oracle_on_fixed_graphs() {
        let cases: Vec<(usize, Vec<(usize, usize)>)> = vec![
            (3, vec![(0, 1), (1, 2), (2, 0)]),
            (4, vec![(0, 1), (0, 2), (2, 1), (0, 3), (3, 1)]),
            (2, vec![(0, 1), (1, 0), (1, 1)]),
            (
                6,
                vec![
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 0),
                    (1, 4),
                    (4, 2),
                    (3, 5),
                    (5, 0),
                ],
            ),
            (1, vec![(0, 0), (0, 0)]),
        ];
        for (n, edges) in cases {
            let fast = cycle_equivalence_classes(n, &edges);
            let slow = cycle_equivalence_classes_oracle(n, &edges);
            assert!(
                same_partition(&fast, &slow),
                "partition mismatch on {edges:?}: {fast:?} vs {slow:?}"
            );
        }
    }

    #[test]
    fn partition_comparison_detects_differences() {
        assert!(same_partition(&[0, 0, 1], &[5, 5, 9]));
        assert!(!same_partition(&[0, 0, 1], &[5, 9, 9]));
        assert!(!same_partition(&[0], &[0, 0]));
    }
}
