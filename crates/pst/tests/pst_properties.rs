//! Property tests for the PST substrate: the fast cycle-equivalence
//! labelling must match the exact fundamental-cycle-matrix oracle on
//! random connected multigraphs, and PSTs of random structured CFGs must
//! satisfy every structural invariant.

use proptest::prelude::*;
use spillopt_pst::{cycle_equivalence_classes, cycle_equivalence_classes_oracle, verify_pst, Pst};

/// Random connected multigraph: a random spanning tree plus extra edges
/// (parallel edges and self-loops allowed).
fn arb_connected_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..12).prop_flat_map(|n| {
        let tree = proptest::collection::vec(0usize..usize::MAX, n - 1);
        let extra = proptest::collection::vec((0usize..n, 0usize..n), 0..12);
        (Just(n), tree, extra).prop_map(|(n, tree, extra)| {
            let mut edges = Vec::new();
            for (v, r) in tree.iter().enumerate() {
                let u = r % (v + 1);
                edges.push((u, v + 1));
            }
            edges.extend(extra);
            (n, edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cycle_equivalence_matches_oracle((n, edges) in arb_connected_graph()) {
        let fast = cycle_equivalence_classes(n, &edges);
        let slow = cycle_equivalence_classes_oracle(n, &edges);
        prop_assert!(
            spillopt_pst::cycle_equiv::same_partition(&fast, &slow),
            "partition mismatch on {edges:?}: fast {fast:?} vs oracle {slow:?}"
        );
    }
}

/// Random structured CFGs via the benchmark generator (reducible,
/// terminating, verifier-clean by construction).
mod structured {
    use super::*;
    use rand::SeedableRng as _;
    use spillopt_benchgen::{emit_function, gen_body, EmitConfig, ShapeConfig, Style};
    use spillopt_ir::{Cfg, Target};

    fn generated_cfg(seed: u64, budget: usize) -> Cfg {
        let target = Target::default();
        let shape = ShapeConfig {
            budget,
            loop_prob: 0.35,
            else_prob: 0.5,
            cold_if_prob: 0.3,
            goto_prob: 0.12,
            call_prob: 0.1,
            loop_trip: (2, 6),
            max_depth: 4,
        };
        let emit = EmitConfig {
            shape: shape.clone(),
            pressure: 5,
            num_params: 2,
            data_slots: 2,
            style: if seed.is_multiple_of(2) {
                Style::Memory
            } else {
                Style::Register
            },
            num_handlers: (seed % 3) as usize,
            handler_goto_frac: 0.5,
            hot_segment_calls: (seed % 2) as usize,
            crossing_frac: 0.2,
            cold_crossing: 0.5,
            cold_sites: (seed % 2) as usize,
        };
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let body = gen_body(&shape, &mut rng, 1);
        let func = emit_function("p", &target, &emit, &body, 0, seed ^ 0xbeef);
        Cfg::compute(&func)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pst_invariants_on_random_cfgs(seed in 0u64..100_000, budget in 5usize..40) {
            let cfg = generated_cfg(seed, budget);
            let pst = Pst::compute(&cfg);
            let errs = verify_pst(&cfg, &pst);
            prop_assert!(errs.is_empty(), "{errs:?}");
        }

        #[test]
        fn pst_is_deterministic(seed in 0u64..100_000) {
            let cfg = generated_cfg(seed, 20);
            let a = Pst::compute(&cfg);
            let b = Pst::compute(&cfg);
            prop_assert_eq!(a.num_regions(), b.num_regions());
            prop_assert_eq!(a.postorder(), b.postorder());
        }

        /// Every non-root region's boundary edges really are the *only*
        /// edges crossing the region (the literal single-entry
        /// single-exit property).
        #[test]
        fn regions_are_single_entry_single_exit(seed in 0u64..100_000) {
            let cfg = generated_cfg(seed, 25);
            let pst = Pst::compute(&cfg);
            for r in pst.regions() {
                if r.id == pst.root() {
                    continue;
                }
                let mut entering = Vec::new();
                let mut leaving = Vec::new();
                for (id, e) in cfg.edges() {
                    let from_in = r.blocks.contains(e.from.index());
                    let to_in = r.blocks.contains(e.to.index());
                    if !from_in && to_in {
                        entering.push(id);
                    } else if from_in && !to_in {
                        leaving.push(id);
                    }
                }
                use spillopt_pst::RegionBoundary as RB;
                match r.entry {
                    RB::CfgEdge(e) => prop_assert_eq!(entering, vec![e]),
                    _ => prop_assert!(false, "non-root entry must be a CFG edge"),
                }
                match r.exit {
                    RB::CfgEdge(e) => prop_assert_eq!(leaving, vec![e]),
                    RB::ReturnEdge(_) => prop_assert!(leaving.is_empty()),
                    _ => prop_assert!(false, "unexpected exit boundary"),
                }
            }
        }
    }
}
