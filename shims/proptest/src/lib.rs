//! Offline stand-in for the `proptest` crate, covering the subset this
//! workspace's property tests use: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`Just`], [`collection::vec`], and the
//! `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **No shrinking.** A failing case panics with the drawn input's
//!   `Debug` rendering; it is not minimized. The inputs here are small
//!   (graphs under ~14 nodes, seeds), so raw counterexamples are usable.
//! * **Deterministic seeding.** Case `i` of every test draws from a
//!   fixed per-case seed, so CI failures reproduce locally without a
//!   persistence file.
//!
//! Properties are universally quantified, so unlike the `rand` shim this
//! one does not need to be bit-compatible with the real crate — any
//! uniform draw is a valid test input.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        collection, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult, TestRunner,
    };
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy drawing `true`/`false` uniformly.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Why a test case failed (or was rejected) when a body returns `Err`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// What a `proptest!` body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy producing exactly one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A size specification: a fixed length or a half-open range.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.gen_range(self.clone())
            }
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Debug)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration (`proptest::test_runner::Config` subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives a strategy through `config.cases` deterministic cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// New runner.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `test` on `config.cases` drawn inputs, panicking (with the
    /// input) on the first failure. A body returning `Ok` passes — note
    /// this includes real proptest's "reject" style `return Ok(())`
    /// early-outs, which simply skip the rest of the case.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        for case in 0..self.config.cases {
            // Fixed per-case seeds: failures reproduce without state.
            let mut rng = TestRng::seed_from_u64(0x5eed_0000 + case as u64);
            let value = strategy.sample(&mut rng);
            let rendered = format!("{value:?}");
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
            match result {
                Ok(Ok(())) => {}
                Ok(Err(TestCaseError(msg))) => {
                    panic!("proptest case {case} failed for input {rendered}: {msg}")
                }
                Err(payload) => {
                    eprintln!("proptest case {case} failed for input: {rendered}");
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// The proptest entry macro: wraps `fn name(pat in strategy, ...)` test
/// functions into plain `#[test]`s driven by [`TestRunner`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($cfg);
            let strategy = ($($strat,)+);
            runner.run(&strategy, |($($pat,)+)| -> $crate::TestCaseResult {
                $body
                Ok(())
            });
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!`: plain `assert!` (the runner reports the input).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!`: plain `assert_eq!` (the runner reports the input).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u64..=6)) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
        }

        #[test]
        fn flat_map_vecs(v in (1usize..5).prop_flat_map(|n| collection::vec(0usize..100, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }
}
