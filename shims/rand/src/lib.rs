//! Offline stand-in for the `rand` crate (0.8 line), restricted to the
//! API surface this workspace uses: [`rngs::SmallRng`], [`SeedableRng`],
//! and the [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The container this repository builds in has no network access, so the
//! real crates.io `rand` cannot be fetched. The synthetic SPEC benchmark
//! generator (`spillopt-benchgen`) was calibrated against the exact
//! output streams of `rand 0.8`'s `SmallRng`, and the workspace's
//! qualitative benchmark assertions (e.g. "crafty's optimized ratio is
//! below 0.7") inherit that calibration. This shim is therefore
//! **bit-compatible** with `rand 0.8.5` for the used subset:
//!
//! * `SmallRng` is xoshiro256++ with the SplitMix64 `seed_from_u64`
//!   expansion, exactly as `rand 0.8` implements it on 64-bit targets;
//! * `gen_range` uses the widening-multiply rejection sampler
//!   (`UniformInt::sample_single_inclusive`) with the same zone
//!   computation and the same per-width "large type" (`u32` lanes draw
//!   from `next_u32`, which is the *upper* half of a full `next_u64`);
//! * `gen_bool` is the `Bernoulli` u64-threshold scheme, including the
//!   no-draw fast path at `p == 1.0`;
//! * `gen::<f64>()` is the 53-bit-precision `Standard` mapping.
//!
//! Anything outside this subset is intentionally absent; add it only
//! with the same bit-for-bit discipline.

#![warn(missing_docs)]

/// Low-level RNG interface (the `rand_core` subset).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable RNG interface (the `rand_core` subset).
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed: Default + AsMut<[u8]>;
    /// Constructs the RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Expands a `u64` into a full seed. `SmallRng` overrides this with
    /// the SplitMix64 expansion `rand 0.8` uses for xoshiro generators.
    fn seed_from_u64(mut state: u64) -> Self {
        // rand_core 0.6 default: a PCG32 stream copied into the seed.
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let x = pcg32(&mut state);
            let n = chunk.len();
            chunk.copy_from_slice(&x[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sampling from the `Standard` distribution (the `gen()` method).
pub trait StandardSample {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for i64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for i32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit precision: take the high 53 bits, scale by 2^-53.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a uniform range sampler (mirrors `rand::distributions::
/// uniform::SampleUniform` closely enough for type inference to behave
/// identically: one generic [`SampleRange`] impl over all such types).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "cannot sample empty range");
        T::sample_single_inclusive(low, high, rng)
    }
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $large:ty, $gen:ident) => {
        impl SampleUniform for $ty {
            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                sample_inclusive_impl!($ty, $unsigned, $large, $gen, low, high, rng)
            }

            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                sample_inclusive_impl!($ty, $unsigned, $large, $gen, low, high - 1, rng)
            }
        }
    };
}

macro_rules! sample_inclusive_impl {
    ($ty:ty, $unsigned:ty, $large:ty, $gen:ident, $low:expr, $high:expr, $rng:expr) => {{
        let low: $ty = $low;
        let high: $ty = $high;
        let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $large;
        if range == 0 {
            // The full integer domain: every draw is acceptable.
            $rng.$gen() as $ty
        } else {
            let zone: $large = (range << range.leading_zeros()).wrapping_sub(1);
            loop {
                let v: $large = $rng.$gen();
                let (hi, lo) = wmul(v, range);
                if lo <= zone {
                    break low.wrapping_add(hi as $ty);
                }
            }
        }
    }};
}

trait WideningMul: Sized {
    fn wmul_impl(self, other: Self) -> (Self, Self);
}

impl WideningMul for u64 {
    fn wmul_impl(self, other: Self) -> (Self, Self) {
        let t = self as u128 * other as u128;
        ((t >> 64) as u64, t as u64)
    }
}

impl WideningMul for u32 {
    fn wmul_impl(self, other: Self) -> (Self, Self) {
        let t = self as u64 * other as u64;
        ((t >> 32) as u32, t as u32)
    }
}

fn wmul<T: WideningMul>(a: T, b: T) -> (T, T) {
    a.wmul_impl(b)
}

uniform_int_impl!(u64, u64, u64, next_u64);
uniform_int_impl!(i64, u64, u64, next_u64);
uniform_int_impl!(usize, usize, u64, next_u64);
uniform_int_impl!(u32, u32, u32, next_u32);
uniform_int_impl!(i32, u32, u32, next_u32);

/// User-facing RNG methods (the `rand::Rng` subset).
pub trait Rng: RngCore {
    /// Draws a value from the `Standard` distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // rand 0.8's Bernoulli: u64 threshold, no draw when p == 1.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = if p == 1.0 {
            u64::MAX
        } else {
            (p * SCALE) as u64
        };
        if p_int == u64::MAX {
            return true;
        }
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// `rand 0.8`'s `SmallRng` on 64-bit targets: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            // The low bits of xoshiro256++ have linear artifacts; rand
            // takes the upper half of a full 64-bit draw.
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            if seed.iter().all(|&b| b == 0) {
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            SmallRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion, as rand 0.8's xoshiro256plusplus.
            const PHI: u64 = 0x9e3779b97f4a7c15;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                chunk.copy_from_slice(&z.to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_plausible() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = r.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: f64 = r.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }
}
