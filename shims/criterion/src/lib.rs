//! Offline stand-in for the `criterion` crate: the container this
//! workspace builds in has no network access, so the real harness cannot
//! be fetched. This shim keeps the `benches/` targets compiling and
//! producing *useful, honest* wall-clock numbers, without criterion's
//! statistical machinery (no warm-up modeling, outlier classification,
//! or HTML reports).
//!
//! Each benchmark runs a fixed number of timed batches (scaled by
//! `sample_size`) and reports the per-iteration median and minimum in
//! nanoseconds on stdout.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 50,
        }
    }
}

/// Throughput annotation (accepted and ignored).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepts a throughput annotation (ignored by the shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        b.report(&self.name, &id.id);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        for _ in 0..self.sample_size {
            f(&mut b, input);
        }
        b.report(&self.name, &id.id);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Times one batch of `routine` calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm call, then a timed batch sized to at least ~1ms so
        // cheap routines are not pure timer noise.
        std::hint::black_box(routine());
        let probe = Instant::now();
        std::hint::black_box(routine());
        let once = probe.elapsed().as_nanos().max(1) as u64;
        let iters = (1_000_000 / once).clamp(1, 1000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.samples
            .push(start.elapsed().as_nanos() as f64 / iters as f64);
    }

    fn report(&mut self, group: &str, id: &str) {
        if self.samples.is_empty() {
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        println!("bench {group}/{id}: median {median:.0} ns/iter (min {min:.0})");
        self.samples.clear();
    }
}

/// Declares a benchmark group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` from group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls = calls.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(calls > 0);
    }
}
